//! The remote-worker mode of `petal-shard`: connect out to a
//! `petal-farmd` dispatcher and serve jobs over a socket.
//!
//! The job-serving core is identical to the pipe mode — the same
//! [`petal_farm::evaluate_job`] on the same `(benchmark, machine)`
//! sessions — wrapped in the socket lifecycle from `docs/farmd.md`:
//!
//! 1. connect (with retry patience, so workers may start before the
//!    dispatcher), exchange `HELLO`s and negotiate a wire version;
//! 2. `REGISTER` with a name and a slot count (the pipelining depth the
//!    dispatcher may keep in flight here);
//! 3. serve interleaved `INIT`/`JOB` records — `INIT` may arrive *mid
//!    stream* whenever the dispatcher re-targets this worker at a new
//!    client session — while a background thread emits `HEARTBEAT`s on a
//!    period so the dispatcher can tell a busy worker from a dead one;
//! 4. leave on `GOODBYE`/`DONE`; on EOF or a socket error the worker
//!    assumes the dispatcher is *bouncing* (crash-recovery restart) and
//!    reconnects + re-registers within the same `patience` window,
//!    exiting quietly only when the dispatcher stays gone.
//!
//! The worker stays stateless with respect to tuning: raw outcomes only,
//! all pricing in the tuner's merge, so the dispatcher may hand any job
//! to any worker (or the same job to two) without perturbing results.
//! That statelessness is also what makes reconnecting trivial: a fresh
//! `REGISTER` admits this process as a brand-new worker id, and any job
//! lost with the old connection is simply re-queued by the dispatcher.

use crate::{err, ServeError};
use petal_apps::{benchmark_from_spec, Benchmark};
use petal_farm::net::{Endpoint, FarmStream};
use petal_farm::wire::{negotiate, Message, WireEncoder, MIN_WIRE_VERSION, WIRE_VERSION};
use petal_gpu::profile::MachineProfile;
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Configuration for one remote-worker session (`petal-shard --connect`).
#[derive(Debug, Clone)]
pub struct RemoteOptions {
    /// Dispatcher endpoint (`host:port` or `unix:<path>`).
    pub endpoint: String,
    /// Operator-facing worker name sent in `REGISTER`.
    pub name: String,
    /// Jobs the dispatcher may keep in flight here (pipelining depth).
    pub slots: u64,
    /// `HEARTBEAT` period.
    pub heartbeat: Duration,
    /// How long to keep retrying the initial connect.
    pub patience: Duration,
    /// Fault injection for churn tests: serve exactly this many jobs,
    /// then die abruptly (no `RESULT`, no `GOODBYE`) on receiving the
    /// next one.
    pub fail_after: Option<u64>,
}

impl RemoteOptions {
    /// Defaults for `endpoint`: a pid-derived name, 2 slots, 250 ms
    /// heartbeats, 10 s of connect patience, no fault injection.
    #[must_use]
    pub fn new(endpoint: impl Into<String>) -> Self {
        RemoteOptions {
            endpoint: endpoint.into(),
            name: format!("worker-{}", std::process::id()),
            slots: 2,
            heartbeat: Duration::from_millis(250),
            patience: Duration::from_secs(10),
            fail_after: None,
        }
    }
}

/// The socket's write half, shared by the serve loop (RESULTs, READYs)
/// and the heartbeat thread. One mutex serializes whole lines, so frames
/// never interleave.
struct RemoteWriter {
    stream: FarmStream,
    enc: WireEncoder,
    line: String,
}

impl RemoteWriter {
    fn send(&mut self, msg: &Message) -> std::io::Result<()> {
        self.enc.encode_into(msg, &mut self.line);
        self.line.push('\n');
        self.stream.write_all(self.line.as_bytes())?;
        self.stream.flush()
    }
}

/// How one connection to the dispatcher ended.
enum Served {
    /// The dispatcher dismissed this worker (`GOODBYE`/`DONE`, or it
    /// stayed gone through a whole reconnect window): final, exit clean.
    Dismissed(String),
    /// EOF or a socket error: the dispatcher may be bouncing — reconnect.
    Lost(String),
}

/// Connect to a dispatcher and serve jobs until it says goodbye.
///
/// A lost connection (EOF, read/write error, torn record) is *not* the
/// end: the dispatcher may be restarting with its journal, so the worker
/// reconnects and re-registers, keeping its `fail_after` count across
/// attempts. Only an explicit `GOODBYE`/`DONE` — or a dispatcher that
/// stays unreachable for a whole `patience` window — ends the process.
///
/// # Errors
/// First-connect failures, negotiation failures and protocol violations.
pub fn serve_remote(opts: &RemoteOptions) -> Result<(), ServeError> {
    let mut served: u64 = 0;
    let mut reconnecting = false;
    loop {
        match serve_once(opts, &mut served, reconnecting)? {
            Served::Dismissed(reason) => {
                eprintln!("petal-shard[{}]: leaving the farm: {reason}", opts.name);
                return Ok(());
            }
            Served::Lost(reason) => {
                eprintln!(
                    "petal-shard[{}]: dispatcher connection lost ({reason}); reconnecting",
                    opts.name
                );
                reconnecting = true;
                // Brief pause so a crash-looping dispatcher is not hammered.
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// One connection's worth of serving. `served` persists across calls so
/// `fail_after` fault injection counts jobs per *process*, not per
/// connection. When `reconnecting`, a connect failure is a quiet
/// dismissal (the farm is gone) rather than an error.
fn serve_once(
    opts: &RemoteOptions,
    served: &mut u64,
    reconnecting: bool,
) -> Result<Served, ServeError> {
    let endpoint = Endpoint::parse(&opts.endpoint).map_err(err)?;
    let stream = match FarmStream::connect_retry(&endpoint, opts.patience) {
        Ok(s) => s,
        Err(e) if reconnecting => {
            return Ok(Served::Dismissed(format!("dispatcher did not come back: {e}")));
        }
        Err(e) => return Err(err(format!("connecting to farmd at {endpoint}: {e}"))),
    };
    let write_half =
        stream.try_clone().map_err(|e| err(format!("cloning farmd connection: {e}")))?;
    let mut reader = BufReader::new(stream);
    let writer = Arc::new(Mutex::new(RemoteWriter {
        stream: write_half,
        enc: WireEncoder::default(),
        line: String::new(),
    }));
    // Socket I/O failures return `Served::Lost` (reconnectable) rather
    // than a hard error; protocol violations stay hard errors.
    let send =
        |msg: &Message| -> std::io::Result<()> { writer.lock().expect("writer lock").send(msg) };
    let mut line = String::new();
    let recv_line =
        |reader: &mut BufReader<FarmStream>, line: &mut String| -> std::io::Result<bool> {
            line.clear();
            let n = reader.read_line(line)?;
            while line.ends_with('\n') || line.ends_with('\r') {
                line.pop();
            }
            Ok(n > 0)
        };

    // HELLO exchange + version negotiation.
    if let Err(e) = send(&Message::hello()) {
        return Ok(Served::Lost(format!("writing HELLO: {e}")));
    }
    match recv_line(&mut reader, &mut line) {
        Ok(true) => {}
        Ok(false) => return Ok(Served::Lost("connection closed before HELLO".to_owned())),
        Err(e) => return Ok(Served::Lost(format!("reading HELLO: {e}"))),
    }
    match Message::decode(&line).map_err(|e| err(e.to_string()))? {
        Message::Hello { min_version, max_version } => {
            negotiate((MIN_WIRE_VERSION, WIRE_VERSION), (min_version, max_version))
                .map_err(|e| err(e.to_string()))?;
        }
        Message::Goodbye { reason } => {
            return Err(err(format!("farmd rejected the connection: {reason}")));
        }
        other => return Err(err(format!("farmd answered HELLO with {other:?}"))),
    }

    // Join the pool.
    if let Err(e) = send(&Message::Register {
        name: opts.name.clone(),
        slots: opts.slots.max(1),
        pid: u64::from(std::process::id()),
    }) {
        return Ok(Served::Lost(format!("writing REGISTER: {e}")));
    }

    // Liveness thread: heartbeats flow even while a long trial evaluates,
    // because the serve loop and this thread share the writer mutex, not
    // a single thread. The flag stops it on clean exit; a send failure
    // (dispatcher gone) stops it on its own.
    let stop = Arc::new(AtomicBool::new(false));
    let hb_writer = Arc::clone(&writer);
    let hb_stop = Arc::clone(&stop);
    let hb_period = opts.heartbeat;
    std::thread::spawn(move || {
        let mut seq: u64 = 0;
        loop {
            std::thread::sleep(hb_period);
            if hb_stop.load(Ordering::Relaxed) {
                return;
            }
            if hb_writer.lock().expect("writer lock").send(&Message::Heartbeat { seq }).is_err() {
                return;
            }
            seq += 1;
        }
    });
    // Whatever path the serve loop exits on, stop the heartbeats and
    // close the socket so the dispatcher sees a prompt EOF.
    struct Cleanup(Arc<AtomicBool>, Arc<Mutex<RemoteWriter>>);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Relaxed);
            self.1.lock().expect("writer lock").stream.shutdown();
        }
    }
    let _cleanup = Cleanup(Arc::clone(&stop), Arc::clone(&writer));

    // Serve: INIT re-targets the session, JOB evaluates, GOODBYE/DONE
    // dismisses, EOF/IO errors report a lost (reconnectable) dispatcher.
    let mut session: Option<(Box<dyn Benchmark>, MachineProfile)> = None;
    loop {
        match recv_line(&mut reader, &mut line) {
            Ok(true) => {}
            Ok(false) => return Ok(Served::Lost("connection closed".to_owned())),
            Err(e) => return Ok(Served::Lost(format!("read error: {e}"))),
        }
        // A torn record is what a SIGKILLed dispatcher leaves mid-write:
        // treat it as a lost connection, not a protocol crime.
        let msg = match Message::decode(&line) {
            Ok(m) => m,
            Err(e) => return Ok(Served::Lost(format!("torn record: {e}"))),
        };
        match msg {
            Message::Init { version, bench_spec, machine } => {
                let bench = benchmark_from_spec(&bench_spec)
                    .map_err(|e| err(format!("bad benchmark spec `{bench_spec}`: {e}")))?;
                session = Some((bench, *machine));
                if let Err(e) = send(&Message::Ready { version }) {
                    return Ok(Served::Lost(format!("writing READY: {e}")));
                }
            }
            Message::Job { index, job } => {
                if opts.fail_after.is_some_and(|n| *served >= n) {
                    // Injected fault: die the way a crashed worker dies —
                    // mid-protocol, without a RESULT or a GOODBYE.
                    eprintln!("petal-shard[{}]: injected failure before job {index}", opts.name);
                    std::process::exit(3);
                }
                let Some((bench, machine)) = session.as_ref() else {
                    return Err(err(format!("JOB {index} before any INIT")));
                };
                let outcome = petal_farm::evaluate_job(&**bench, machine, &job);
                if let Err(e) = send(&Message::Result { index, outcome }) {
                    return Ok(Served::Lost(format!("writing RESULT: {e}")));
                }
                *served += 1;
            }
            Message::Goodbye { reason } => {
                return Ok(Served::Dismissed(format!("farmd says goodbye: {reason}")));
            }
            Message::Done => return Ok(Served::Dismissed("farmd says done".to_owned())),
            // Stray liveness chatter is legal on any socket.
            Message::Heartbeat { .. } => {}
            other => return Err(err(format!("unexpected {other:?} from farmd"))),
        }
    }
}

//! Soak test (opt-in: `PETAL_SOAK=1`): hammer one dispatcher with
//! thousands of jobs from several concurrent client sessions, served by
//! a mixed TCP + unix-domain worker pool that churns mid-run — one
//! worker dies, a replacement joins late, and the *dispatcher itself* is
//! hard-killed mid-run and restarted over its journal. Every session's
//! results must be bit-identical to its own in-process run.

use petal_apps::blackscholes::BlackScholes;
use petal_apps::Benchmark;
use petal_farm::net::Endpoint;
use petal_farm::{job_seed, EvalFarm, EvalJob, FarmSettings};
use petal_gpu::profile::MachineProfile;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

struct WorkerGuard(Child);

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_worker(endpoint: &Endpoint, name: &str, fail_after: Option<u64>) -> WorkerGuard {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_petal-shard"));
    cmd.arg("--connect")
        .arg(endpoint.to_string())
        .arg("--name")
        .arg(name)
        .arg("--heartbeat-ms")
        .arg("100")
        .stdin(Stdio::null());
    if let Some(n) = fail_after {
        cmd.arg("--fail-after").arg(n.to_string());
    }
    WorkerGuard(cmd.spawn().expect("spawn petal-shard --connect"))
}

#[test]
fn soak_thousands_of_jobs_through_a_churning_mixed_pool() {
    if std::env::var("PETAL_SOAK").ok().as_deref() != Some("1") {
        eprintln!("skipping soak test (set PETAL_SOAK=1 to run)");
        return;
    }
    const JOBS_PER_SESSION: u64 = 1_000;
    const SESSIONS: u64 = 3;

    let pid = std::process::id();
    let sock = std::env::temp_dir().join(format!("petal-soak-{pid}.sock"));
    let journal = std::env::temp_dir().join(format!("petal-soak-journal-{pid}"));
    let _ = std::fs::remove_dir_all(&journal);
    let opts = {
        let journal = journal.clone();
        move || petal_farmd::FarmdOptions {
            journal: Some(journal.clone()),
            ..petal_farmd::FarmdOptions::default()
        }
    };
    let farmd = petal_farmd::Farmd::bind(
        &[Endpoint::Tcp("127.0.0.1:0".to_owned()), Endpoint::Unix(sock)],
        opts(),
    )
    .expect("bind dispatcher");
    let tcp = farmd.endpoints()[0].clone();
    let unix = farmd.endpoints()[1].clone();

    // Mixed pool: two TCP workers (one doomed mid-run), two unix
    // workers, and a late TCP replacement.
    let mut guards = vec![
        spawn_worker(&tcp, "tcp-doomed", Some(50)),
        spawn_worker(&tcp, "tcp-b", None),
        spawn_worker(&unix, "unix-a", None),
        spawn_worker(&unix, "unix-b", None),
    ];
    assert!(farmd.wait_workers(4, Duration::from_secs(15)), "pool registered");
    let tcp_ = tcp.clone();
    let late = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(500));
        spawn_worker(&tcp_, "tcp-late", None)
    });

    // The dispatcher bounce: once a third of the work is done, hard-kill
    // the dispatcher (no goodbyes) and restart it on the same endpoints
    // over the same journal. Workers reconnect, sessions resume, and the
    // per-session bit-identity checks below prove nobody noticed.
    // Counters do *not* survive the bounce (they are per-process), so
    // the pre-crash snapshot is captured here.
    let finished = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let controller = {
        use std::sync::atomic::Ordering;
        let finished = std::sync::Arc::clone(&finished);
        let endpoints = vec![tcp.clone(), unix.clone()];
        let mut farmd = farmd;
        std::thread::spawn(move || {
            while farmd.stats().completed < SESSIONS * JOBS_PER_SESSION / 3 {
                if finished.load(Ordering::Relaxed) {
                    return (farmd, None);
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            let pre = farmd.stats();
            farmd.abort();
            drop(farmd);
            // The freed TCP port can take a beat to become bindable again.
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            let farmd = loop {
                match petal_farmd::Farmd::bind(&endpoints, opts()) {
                    Ok(f) => break f,
                    Err(e) if std::time::Instant::now() < deadline => {
                        eprintln!("soak: re-bind not ready yet ({e}); retrying");
                        std::thread::sleep(Duration::from_millis(100));
                    }
                    Err(e) => panic!("re-bind dispatcher: {e}"),
                }
            };
            (farmd, Some(pre))
        })
    };

    // Each session tunes a distinct benchmark so workers re-INIT as they
    // bounce between sessions. Sessions run concurrently from their own
    // threads and check against their own in-process reference.
    let machine = MachineProfile::laptop();
    let clients: Vec<_> = (0..SESSIONS)
        .map(|s| {
            let endpoint = if s % 2 == 0 { tcp.to_string() } else { unix.to_string() };
            let machine = machine.clone();
            std::thread::spawn(move || {
                let bench = BlackScholes::new(256 + 128 * usize::try_from(s).expect("small"));
                let config = bench.program(&machine).default_config(&machine);
                let jobs: Vec<EvalJob> = (0..JOBS_PER_SESSION)
                    .map(|i| EvalJob {
                        config: config.clone(),
                        size: bench.input_size(),
                        engine_seed: job_seed(100 + s, 0, i),
                    })
                    .collect();
                let expected = EvalFarm::new(&FarmSettings::sequential(), false)
                    .evaluate(&bench, &machine, &jobs);
                let got = EvalFarm::new(&FarmSettings::remote(endpoint), false)
                    .evaluate(&bench, &machine, &jobs);
                assert_eq!(got.len(), expected.len(), "session {s}");
                for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
                    assert_eq!(g.fitness, e.fitness, "session {s} job {i}");
                    assert_eq!(g.compile_secs, e.compile_secs, "session {s} job {i}");
                    assert_eq!(g.trial_secs, e.trial_secs, "session {s} job {i}");
                    assert_eq!(g.ran, e.ran, "session {s} job {i}");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("session thread");
    }
    finished.store(true, std::sync::atomic::Ordering::Relaxed);
    guards.push(late.join().expect("late worker spawned"));
    let (farmd, pre) = controller.join().expect("controller thread");
    let pre = pre.expect("the dispatcher bounce never triggered; the soak proved nothing");

    // `completed` is per-process: the pre-crash count died with the old
    // dispatcher, and post-resume replays served from the journal's done
    // set are answered without re-counting — so the two process's counts
    // need not sum to the job total. The bit-identity checks above are
    // the real invariant; the stats only prove the churn happened and
    // nothing leaked.
    let stats = farmd.stats();
    assert!(pre.completed > 0, "work completed before the bounce");
    assert!(stats.completed > 0, "work completed after the bounce");
    assert!(pre.requeues > 0, "the doomed worker's death caused re-queues before the bounce");
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.inflight, 0);
    drop(guards);
    let _ = std::fs::remove_dir_all(&journal);
}

//! Soak test (opt-in: `PETAL_SOAK=1`): hammer one dispatcher with
//! thousands of jobs from several concurrent client sessions, served by
//! a mixed TCP + unix-domain worker pool that churns mid-run — one
//! worker dies, a replacement joins late. Every session's results must
//! be bit-identical to its own in-process run.

use petal_apps::blackscholes::BlackScholes;
use petal_apps::Benchmark;
use petal_farm::net::Endpoint;
use petal_farm::{job_seed, EvalFarm, EvalJob, FarmSettings};
use petal_gpu::profile::MachineProfile;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

struct WorkerGuard(Child);

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_worker(endpoint: &Endpoint, name: &str, fail_after: Option<u64>) -> WorkerGuard {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_petal-shard"));
    cmd.arg("--connect")
        .arg(endpoint.to_string())
        .arg("--name")
        .arg(name)
        .arg("--heartbeat-ms")
        .arg("100")
        .stdin(Stdio::null());
    if let Some(n) = fail_after {
        cmd.arg("--fail-after").arg(n.to_string());
    }
    WorkerGuard(cmd.spawn().expect("spawn petal-shard --connect"))
}

#[test]
fn soak_thousands_of_jobs_through_a_churning_mixed_pool() {
    if std::env::var("PETAL_SOAK").ok().as_deref() != Some("1") {
        eprintln!("skipping soak test (set PETAL_SOAK=1 to run)");
        return;
    }
    const JOBS_PER_SESSION: u64 = 1_000;
    const SESSIONS: u64 = 3;

    let sock = std::env::temp_dir().join(format!("petal-soak-{}.sock", std::process::id()));
    let farmd = petal_farmd::Farmd::bind(
        &[Endpoint::Tcp("127.0.0.1:0".to_owned()), Endpoint::Unix(sock)],
        petal_farmd::FarmdOptions::default(),
    )
    .expect("bind dispatcher");
    let tcp = farmd.endpoints()[0].clone();
    let unix = farmd.endpoints()[1].clone();

    // Mixed pool: two TCP workers (one doomed mid-run), two unix
    // workers, and a late TCP replacement.
    let mut guards = vec![
        spawn_worker(&tcp, "tcp-doomed", Some(50)),
        spawn_worker(&tcp, "tcp-b", None),
        spawn_worker(&unix, "unix-a", None),
        spawn_worker(&unix, "unix-b", None),
    ];
    assert!(farmd.wait_workers(4, Duration::from_secs(15)), "pool registered");
    let tcp_ = tcp.clone();
    let late = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(500));
        spawn_worker(&tcp_, "tcp-late", None)
    });

    // Each session tunes a distinct benchmark so workers re-INIT as they
    // bounce between sessions. Sessions run concurrently from their own
    // threads and check against their own in-process reference.
    let machine = MachineProfile::laptop();
    let clients: Vec<_> = (0..SESSIONS)
        .map(|s| {
            let endpoint = if s % 2 == 0 { tcp.to_string() } else { unix.to_string() };
            let machine = machine.clone();
            std::thread::spawn(move || {
                let bench = BlackScholes::new(256 + 128 * usize::try_from(s).expect("small"));
                let config = bench.program(&machine).default_config(&machine);
                let jobs: Vec<EvalJob> = (0..JOBS_PER_SESSION)
                    .map(|i| EvalJob {
                        config: config.clone(),
                        size: bench.input_size(),
                        engine_seed: job_seed(100 + s, 0, i),
                    })
                    .collect();
                let expected = EvalFarm::new(&FarmSettings::sequential(), false)
                    .evaluate(&bench, &machine, &jobs);
                let got = EvalFarm::new(&FarmSettings::remote(endpoint), false)
                    .evaluate(&bench, &machine, &jobs);
                assert_eq!(got.len(), expected.len(), "session {s}");
                for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
                    assert_eq!(g.fitness, e.fitness, "session {s} job {i}");
                    assert_eq!(g.compile_secs, e.compile_secs, "session {s} job {i}");
                    assert_eq!(g.trial_secs, e.trial_secs, "session {s} job {i}");
                    assert_eq!(g.ran, e.ran, "session {s} job {i}");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("session thread");
    }
    guards.push(late.join().expect("late worker spawned"));

    let stats = farmd.stats();
    assert_eq!(stats.completed, SESSIONS * JOBS_PER_SESSION, "every job answered once");
    assert!(stats.requeues > 0, "the doomed worker's death caused re-queues");
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.inflight, 0);
    drop(guards);
}

//! The farmd acceptance matrix: autotuning against a `petal-farmd`
//! dispatcher — over TCP, over unix-domain sockets, with workers killed
//! mid-batch, and with scripted frame faults on the wire — produces a
//! `Tuned.config` (and full search trajectory) bit-identical to the
//! in-process farm. Together with `determinism.rs` (shards ∈ {0,1,2,4})
//! this covers the whole determinism matrix with real worker processes.
//!
//! Worker processes are the same `petal-shard` binary the pipe mode
//! uses, in `--connect` mode; `--fail-after N` makes one exit abruptly
//! after serving N jobs, which is how deaths are injected at
//! deterministic points.

use petal_apps::blackscholes::BlackScholes;
use petal_apps::Benchmark;
use petal_farm::net::Endpoint;
use petal_farm::FarmSettings;
use petal_farmd::proxy::{ConnScript, Fault, FaultProxy};
use petal_farmd::{Farmd, FarmdOptions, FarmdStats};
use petal_gpu::profile::MachineProfile;
use petal_tuner::{Autotuner, Tuned, TunerSettings};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A spawned worker process, killed (if still alive) on scope exit.
struct WorkerGuard(Child);

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawn `petal-shard --connect` against `endpoint`. `heartbeat_ms` is
/// explicit because the proxy tests need heartbeats out of the way (they
/// count frames). `fail_after` injects an abrupt exit after N jobs.
fn spawn_worker(
    endpoint: &Endpoint,
    name: &str,
    heartbeat_ms: u64,
    fail_after: Option<u64>,
) -> WorkerGuard {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_petal-shard"));
    cmd.arg("--connect")
        .arg(endpoint.to_string())
        .arg("--name")
        .arg(name)
        .arg("--heartbeat-ms")
        .arg(heartbeat_ms.to_string())
        .stdin(Stdio::null());
    if let Some(n) = fail_after {
        cmd.arg("--fail-after").arg(n.to_string());
    }
    WorkerGuard(cmd.spawn().expect("spawn petal-shard --connect"))
}

fn dispatcher(endpoint: Endpoint, deadline: Duration) -> Farmd {
    Farmd::bind(&[endpoint], FarmdOptions { deadline, ..FarmdOptions::default() })
        .expect("bind dispatcher")
}

fn tcp_dispatcher(deadline: Duration) -> Farmd {
    dispatcher(Endpoint::Tcp("127.0.0.1:0".to_owned()), deadline)
}

fn tune(bench: &dyn Benchmark, machine: &MachineProfile, farm: FarmSettings) -> Tuned {
    let settings = TunerSettings { seed: 0x5eed, farm, ..TunerSettings::smoke() };
    Autotuner::new(bench, machine, settings).run()
}

fn baseline(bench: &dyn Benchmark, machine: &MachineProfile) -> Tuned {
    tune(bench, machine, FarmSettings::sequential())
}

/// Everything the search decided must agree; only the farm-shaped
/// accounting (shard/thread counts) legitimately differs between local
/// and remote runs.
fn assert_trajectory_eq(got: &Tuned, want: &Tuned, label: &str) {
    assert_eq!(got.config, want.config, "{label}: config diverged");
    assert_eq!(got.time_secs, want.time_secs, "{label}: best time diverged");
    assert_eq!(got.stats.trials, want.stats.trials, "{label}");
    assert_eq!(got.stats.rejected, want.stats.rejected, "{label}");
    assert_eq!(got.stats.tuning_secs, want.stats.tuning_secs, "{label}");
    assert_eq!(got.stats.compile_secs, want.stats.compile_secs, "{label}");
    assert_eq!(got.stats.kicks, want.stats.kicks, "{label}");
    assert_eq!(got.stats.round_best, want.stats.round_best, "{label}");
}

#[test]
fn farmd_over_tcp_and_unix_matches_the_in_process_farm() {
    let machine = MachineProfile::desktop();
    let bench = BlackScholes::new(4_096);
    let want = baseline(&bench, &machine);

    let farmd = tcp_dispatcher(Duration::from_secs(2));
    let ep = farmd.endpoints()[0].clone();
    let _a = spawn_worker(&ep, "tcp-a", 100, None);
    let _b = spawn_worker(&ep, "tcp-b", 100, None);
    assert!(farmd.wait_workers(2, Duration::from_secs(10)), "workers registered");
    let got = tune(&bench, &machine, FarmSettings::remote(ep.to_string()));
    assert_trajectory_eq(&got, &want, "farmd tcp");
    assert_eq!(farmd.stats().requeues, 0, "healthy fleet never re-queues");
    drop(farmd);

    let path = std::env::temp_dir().join(format!("petal-churn-{}.sock", std::process::id()));
    let farmd = dispatcher(Endpoint::Unix(path), Duration::from_secs(2));
    let ep = farmd.endpoints()[0].clone();
    let _a = spawn_worker(&ep, "unix-a", 100, None);
    let _b = spawn_worker(&ep, "unix-b", 100, None);
    assert!(farmd.wait_workers(2, Duration::from_secs(10)), "workers registered");
    let got = tune(&bench, &machine, FarmSettings::remote(ep.to_string()));
    assert_trajectory_eq(&got, &want, "farmd unix");
}

#[test]
fn worker_deaths_mid_batch_never_perturb_the_tuned_config() {
    let machine = MachineProfile::desktop();
    let bench = BlackScholes::new(4_096);
    let want = baseline(&bench, &machine);

    // Kill the busiest workers in turn: the scheduler prefers the
    // session-affine, lowest-id worker, so registering a doomed worker
    // *first* guarantees it is the one holding jobs when it dies (a
    // doomed secondary worker might legitimately never be assigned
    // enough jobs to reach its failure point — the fleet is elastic).
    // Workers are registered one at a time so ids follow spawn order.
    let fleets: &[(&str, &[Option<u64>])] = &[
        ("busiest of two dies", &[Some(2), None]),
        ("busiest two of three die in turn", &[Some(2), Some(4), None]),
    ];
    for &(label, fleet) in fleets {
        let farmd = tcp_dispatcher(Duration::from_secs(2));
        let ep = farmd.endpoints()[0].clone();
        let mut guards = Vec::new();
        for (i, &fail) in fleet.iter().enumerate() {
            guards.push(spawn_worker(&ep, &format!("churn-{i}"), 100, fail));
            assert!(farmd.wait_workers(i + 1, Duration::from_secs(10)), "{label}");
        }
        let got = tune(&bench, &machine, FarmSettings::remote(ep.to_string()));
        assert_trajectory_eq(&got, &want, label);
        let stats = farmd.stats();
        let deaths = fleet.iter().flatten().count() as u64;
        assert!(
            stats.requeues >= deaths,
            "{label}: expected ≥{deaths} re-queues, saw {}",
            stats.requeues
        );
        assert_eq!(stats.queued, 0, "{label}: nothing left behind");
        assert_eq!(stats.inflight, 0, "{label}: nothing left behind");
        drop(guards);
    }
}

#[test]
fn total_fleet_loss_mid_batch_recovers_when_a_replacement_joins() {
    let machine = MachineProfile::desktop();
    let bench = BlackScholes::new(4_096);
    let want = baseline(&bench, &machine);

    // The only worker dies holding jobs; the batch waits in the queue
    // (inside the starvation grace window) until a replacement registers
    // and drains it. The tuner never notices.
    let farmd = tcp_dispatcher(Duration::from_secs(2));
    let ep = farmd.endpoints()[0].clone();
    let _doomed = spawn_worker(&ep, "doomed", 100, Some(2));
    assert!(farmd.wait_workers(1, Duration::from_secs(10)), "doomed worker up");
    let ep_ = ep.clone();
    let replacement = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(400));
        spawn_worker(&ep_, "replacement", 100, None)
    });
    let got = tune(&bench, &machine, FarmSettings::remote(ep.to_string()));
    drop(replacement.join().expect("replacement spawned"));
    assert_trajectory_eq(&got, &want, "total fleet loss");
    let stats = farmd.stats();
    assert!(stats.requeues > 0, "the death actually caused re-queues");
    assert_eq!(stats.queued, 0, "nothing left behind");
    assert_eq!(stats.inflight, 0, "nothing left behind");
}

#[test]
fn workers_joining_mid_batch_leave_results_unchanged() {
    let machine = MachineProfile::desktop();
    let bench = BlackScholes::new(4_096);
    let want = baseline(&bench, &machine);

    let farmd = tcp_dispatcher(Duration::from_secs(2));
    let ep = farmd.endpoints()[0].clone();
    let _a = spawn_worker(&ep, "early", 100, None);
    assert!(farmd.wait_workers(1, Duration::from_secs(10)), "first worker up");
    // A second worker elastically joins while the batch is in flight.
    let ep_ = ep.clone();
    let late = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(200));
        spawn_worker(&ep_, "late", 100, None)
    });
    let got = tune(&bench, &machine, FarmSettings::remote(ep.to_string()));
    drop(late.join().expect("late joiner spawned"));
    assert_trajectory_eq(&got, &want, "elastic join");
}

#[test]
fn frame_faults_on_the_wire_never_perturb_the_tuned_config() {
    let machine = MachineProfile::desktop();
    let bench = BlackScholes::new(4_096);
    let want = baseline(&bench, &machine);

    // Worker A reaches the dispatcher through the fault proxy; worker B
    // connects directly and survives everything. Heartbeats are pushed
    // out of the test window (60 s) so the worker→dispatcher frame
    // numbering is deterministic: 1 HELLO, 2 REGISTER, 3 READY, 4+
    // RESULTs; the dispatcher deadline is long for the same reason —
    // deaths here are detected by EOF, not by heartbeat lapse.
    let scripts: &[(&str, Fault)] = &[
        ("duplicated RESULT", Fault::DuplicateFrame(5)),
        ("delayed RESULT", Fault::DelayAfterFrames { after: 4, delay: Duration::from_millis(300) }),
        ("truncated RESULT then close", Fault::TruncateFrameAndClose(6)),
        ("connection closed mid-batch", Fault::CloseAfterFrames(7)),
    ];
    for (label, fault) in scripts {
        let farmd = tcp_dispatcher(Duration::from_secs(60));
        let ep = farmd.endpoints()[0].clone();
        let proxy = FaultProxy::start(ep.clone(), vec![vec![fault.clone()]]).expect("proxy");
        let _a = spawn_worker(proxy.endpoint(), "proxied", 60_000, None);
        let _b = spawn_worker(&ep, "direct", 60_000, None);
        assert!(farmd.wait_workers(2, Duration::from_secs(10)), "{label}");
        let got = tune(&bench, &machine, FarmSettings::remote(ep.to_string()));
        assert_trajectory_eq(&got, &want, label);
        let stats = farmd.stats();
        assert_eq!(stats.queued, 0, "{label}: nothing left behind");
        assert_eq!(stats.inflight, 0, "{label}: nothing left behind");
    }
}

/// A dispatcher→worker write cut mid-frame (the connection dies under
/// the dispatcher's pen) must degrade to an ordinary worker drain —
/// lost jobs re-queued, scheduler alive — and never perturb the tuned
/// config. The proxy truncates the 3rd downstream frame (HELLO, INIT,
/// then mid-JOB) and slams the connection: the worker sees a torn
/// record and reconnects as a fresh id; the dispatcher sees its writes
/// fail and its reader hit EOF, and drains the broken connection.
#[test]
fn truncated_dispatcher_writes_drain_the_worker_not_the_scheduler() {
    let machine = MachineProfile::desktop();
    let bench = BlackScholes::new(4_096);
    let want = baseline(&bench, &machine);

    let farmd = tcp_dispatcher(Duration::from_secs(60));
    let ep = farmd.endpoints()[0].clone();
    let script = ConnScript {
        upstream_to_peer: vec![Fault::TruncateFrameAndClose(3)],
        ..ConnScript::default()
    };
    let proxy = FaultProxy::start_scripted(ep.clone(), vec![script]).expect("proxy");
    // Register the proxied worker *first*: the scheduler prefers the
    // lowest-id worker, so worker 1 is guaranteed to be assigned the JOB
    // whose write the proxy tears (a later-registered worker might
    // legitimately never be assigned anything).
    let _a = spawn_worker(proxy.endpoint(), "torn-write", 60_000, None);
    assert!(farmd.wait_workers(1, Duration::from_secs(10)), "proxied worker registered");
    let _b = spawn_worker(&ep, "direct", 60_000, None);
    assert!(farmd.wait_workers(2, Duration::from_secs(10)), "workers registered");
    let got = tune(&bench, &machine, FarmSettings::remote(ep.to_string()));
    assert_trajectory_eq(&got, &want, "truncated downstream JOB");
    let stats = farmd.stats();
    assert!(stats.requeues >= 1, "the torn write lost at least the truncated JOB");
    assert_eq!(stats.queued, 0, "nothing left behind");
    assert_eq!(stats.inflight, 0, "nothing left behind");
}

/// The crash-recovery acceptance matrix: SIGKILL-equivalent dispatcher
/// bounces (`Farmd::abort` closes every socket with no goodbyes, then a
/// fresh `Farmd::bind` replays the journal) at three scheduled points
/// must leave `Tuned.config` *and* the full search trajectory
/// bit-identical to the in-process farm at 1 and 8 threads. Unix
/// sockets sidestep TCP rebind races. A controller thread owns the
/// dispatcher: it polls `stats()` until its schedule's trigger fires,
/// aborts, and re-binds the same endpoint over the same journal
/// directory while the workers reconnect and the client resumes its
/// session by token.
#[test]
fn dispatcher_kills_with_journal_recovery_never_perturb_the_tuned_config() {
    let machine = MachineProfile::desktop();
    let bench = BlackScholes::new(4_096);
    let want = baseline(&bench, &machine);
    // The claim is "bit-identical to shards=0 at threads {1, 8}"; the
    // baseline above is threads=1, so pin threads=8 to it first.
    let want8 = tune(&bench, &machine, FarmSettings { threads: 8, ..FarmSettings::sequential() });
    assert_trajectory_eq(&want8, &want, "threads=8 baseline");

    type Trigger = fn(&FarmdStats) -> bool;
    // `workers_first: false` delays the whole fleet until *after* the
    // restart, so the first batch is parked in the queue when the kill
    // lands — `queued > 0` observed by polling alone would be a race,
    // since an idle fleet drains the queue the instant jobs arrive. The
    // other two triggers dwell long enough to poll for.
    let schedules: &[(&str, Trigger, bool)] = &[
        ("mid-queue", |s| s.queued > 0, false),
        ("mid-assignment", |s| s.inflight > 0, true),
        ("after-last-result", |s| s.completed >= 3, true),
    ];
    for (i, &(label, trigger, workers_first)) in schedules.iter().enumerate() {
        let pid = std::process::id();
        let dir = std::env::temp_dir().join(format!("petal-journal-{pid}-{i}"));
        let _ = std::fs::remove_dir_all(&dir);
        let sock = std::env::temp_dir().join(format!("petal-bounce-{pid}-{i}.sock"));
        let ep = Endpoint::Unix(sock);
        let opts = {
            let dir = dir.clone();
            move || FarmdOptions {
                deadline: Duration::from_secs(2),
                journal: Some(dir.clone()),
                ..FarmdOptions::default()
            }
        };
        let mut farmd = Farmd::bind(std::slice::from_ref(&ep), opts()).expect("bind dispatcher");
        let mut guards = Vec::new();
        if workers_first {
            guards.push(spawn_worker(&ep, &format!("bounce-{i}-a"), 100, None));
            guards.push(spawn_worker(&ep, &format!("bounce-{i}-b"), 100, None));
            assert!(farmd.wait_workers(2, Duration::from_secs(10)), "{label}");
        }

        // `finished` lets the controller bail out (instead of spinning
        // forever) if tuning somehow outruns its trigger; the test then
        // fails loudly on `bounced` rather than hanging.
        let finished = Arc::new(AtomicBool::new(false));
        let controller = {
            let finished = Arc::clone(&finished);
            let ep = ep.clone();
            std::thread::spawn(move || {
                while !trigger(&farmd.stats()) {
                    if finished.load(Ordering::Relaxed) {
                        return (farmd, false, Vec::new());
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                // The crash: sockets slam shut, nothing is said.
                farmd.abort();
                drop(farmd);
                // The restart: same endpoint, same journal.
                let farmd =
                    Farmd::bind(std::slice::from_ref(&ep), opts()).expect("re-bind dispatcher");
                let mut late = Vec::new();
                if !workers_first {
                    late.push(spawn_worker(&ep, &format!("bounce-{i}-a"), 100, None));
                    late.push(spawn_worker(&ep, &format!("bounce-{i}-b"), 100, None));
                }
                (farmd, true, late)
            })
        };
        let got = tune(&bench, &machine, FarmSettings::remote(ep.to_string()));
        finished.store(true, Ordering::Relaxed);
        let (farmd, bounced, late_guards) = controller.join().expect("controller thread");
        assert!(bounced, "{label}: the trigger never fired; the schedule proved nothing");
        assert_trajectory_eq(&got, &want, label);
        let stats = farmd.stats();
        assert_eq!(stats.queued, 0, "{label}: nothing left behind");
        assert_eq!(stats.inflight, 0, "{label}: nothing left behind");
        drop(late_guards);
        drop(guards);
        drop(farmd);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

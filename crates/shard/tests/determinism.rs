//! The sharding acceptance test: autotuning through `petal-shard` worker
//! *processes* is bit-identical to the in-process farm at every shard
//! count — `Tuned.config` (and the full search accounting) at
//! `shards ∈ {0, 1, 2, 4}` agree on multiple benchmarks.
//!
//! Cargo builds the `petal-shard` binary for this crate's integration
//! tests and exposes its path as `CARGO_BIN_EXE_petal-shard`, which the
//! farm settings pin explicitly so the test never depends on environment
//! lookup.

use petal_apps::blackscholes::BlackScholes;
use petal_apps::convolution::SeparableConvolution;
use petal_apps::Benchmark;
use petal_farm::{job_seed, EvalFarm, EvalJob, FarmSettings};
use petal_gpu::profile::MachineProfile;
use petal_tuner::{Autotuner, TunerSettings};
use std::path::PathBuf;

fn shard_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_petal-shard"))
}

/// Farm settings for `shards` worker processes (0 = in-process).
fn farm(shards: usize) -> FarmSettings {
    if shards == 0 {
        FarmSettings::sequential()
    } else {
        FarmSettings { shards, shard_bin: Some(shard_bin()), ..FarmSettings::sequential() }
    }
}

#[test]
fn tuned_config_is_identical_at_every_shard_count() {
    let machine = MachineProfile::desktop();
    let benches: Vec<Box<dyn Benchmark>> =
        vec![Box::new(BlackScholes::new(4_096)), Box::new(SeparableConvolution::new(96, 5))];
    for bench in &benches {
        let tune = |shards: usize| {
            let settings =
                TunerSettings { seed: 0x5eed, farm: farm(shards), ..TunerSettings::smoke() };
            Autotuner::new(&**bench, &machine, settings).run()
        };
        let in_process = tune(0);
        for shards in [1, 2, 4] {
            let sharded = tune(shards);
            assert_eq!(
                sharded.config,
                in_process.config,
                "{}: config diverged at {shards} shards",
                bench.name()
            );
            assert_eq!(sharded.time_secs, in_process.time_secs, "{}", bench.name());
            // The whole search trajectory must agree, not just the winner.
            assert_eq!(sharded.stats.trials, in_process.stats.trials);
            assert_eq!(sharded.stats.rejected, in_process.stats.rejected);
            assert_eq!(sharded.stats.tuning_secs, in_process.stats.tuning_secs);
            assert_eq!(sharded.stats.compile_secs, in_process.stats.compile_secs);
            assert_eq!(sharded.stats.kicks, in_process.stats.kicks);
            assert_eq!(sharded.stats.round_best, in_process.stats.round_best);
            // Shard-shaped accounting.
            assert_eq!(sharded.stats.shards, shards);
            assert_eq!(sharded.stats.per_thread_trials.len(), shards);
            assert_eq!(
                sharded.stats.per_thread_trials.iter().sum::<usize>(),
                sharded.stats.trials,
                "per-worker accounting covers every trial"
            );
        }
    }
}

#[test]
fn sharded_batch_equals_in_process_batch_including_compile_pricing() {
    // An OpenCL-compiling benchmark so the submission-order compile
    // re-pricing is actually exercised across the process boundary.
    let bench = SeparableConvolution::new(96, 5);
    let machine = MachineProfile::desktop();
    let config = bench.program(&machine).default_config(&machine);
    let jobs: Vec<EvalJob> = (0..7)
        .map(|i| EvalJob {
            config: config.clone(),
            size: bench.input_size(),
            engine_seed: job_seed(3, 0, i),
        })
        .collect();
    for model_process_restarts in [false, true] {
        let mut in_process = EvalFarm::new(&farm(0), model_process_restarts);
        let expected = in_process.evaluate(&bench, &machine, &jobs);
        for shards in [1, 3] {
            let mut sharded_farm = EvalFarm::new(&farm(shards), model_process_restarts);
            let got = sharded_farm.evaluate(&bench, &machine, &jobs);
            for (i, (e, g)) in expected.iter().zip(&got).enumerate() {
                assert_eq!(e.fitness, g.fitness, "job {i} at {shards} shards");
                assert_eq!(e.compile_secs, g.compile_secs, "job {i} at {shards} shards");
                assert_eq!(e.trial_secs, g.trial_secs, "job {i} at {shards} shards");
                assert_eq!(e.ran, g.ran);
                assert_eq!(g.thread, i % shards.min(jobs.len()), "worker assignment");
            }
        }
    }
}

#[test]
fn large_batches_cannot_deadlock_on_pipe_buffers() {
    // Far more jobs than any tuner generation submits, through few
    // workers: the dispatcher's bounded-outstanding interleaving must
    // keep writes and reads flowing whatever the batch size (a naive
    // write-everything-then-read dispatcher wedges on full OS pipe
    // buffers here).
    let bench = BlackScholes::new(256);
    let machine = MachineProfile::laptop();
    let config = bench.program(&machine).default_config(&machine);
    let jobs: Vec<EvalJob> = (0..600)
        .map(|i| EvalJob {
            config: config.clone(),
            size: bench.input_size(),
            engine_seed: job_seed(9, 0, i),
        })
        .collect();
    let mut sharded_farm = EvalFarm::new(&farm(2), false);
    let got = sharded_farm.evaluate(&bench, &machine, &jobs);
    assert_eq!(got.len(), jobs.len());
    assert!(got.iter().all(|r| r.ran && r.fitness.is_some()));
    // Identical jobs, same seed derivation by index — spot-check the
    // merge kept submission order by comparing against one direct run.
    let expected = EvalFarm::new(&farm(0), false).evaluate(&bench, &machine, &jobs[..1]);
    assert_eq!(got[0].fitness, expected[0].fitness);
}

#[test]
fn pool_survives_benchmark_changes_within_one_farm() {
    // The pool is keyed by (benchmark, machine): switching benchmarks
    // respawns workers transparently and results stay correct.
    let machine = MachineProfile::laptop();
    let mut sharded_farm = EvalFarm::new(&farm(2), false);
    for bench in [BlackScholes::new(1_000), BlackScholes::new(2_000)] {
        let config = bench.program(&machine).default_config(&machine);
        let jobs =
            vec![EvalJob { config, size: bench.input_size(), engine_seed: job_seed(1, 0, 0) }];
        let got = sharded_farm.evaluate(&bench, &machine, &jobs);
        let expected = EvalFarm::new(&farm(0), false).evaluate(&bench, &machine, &jobs);
        assert_eq!(got[0].fitness, expected[0].fitness, "n = {}", bench.input_size());
    }
}

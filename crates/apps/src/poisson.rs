//! The Poisson2D SOR benchmark (§6.2, Fig. 7b).
//!
//! Solves Poisson's equation with Red-Black Successive Over-Relaxation.
//! "Before main iteration, the algorithm splits the input matrix into
//! separate buffers of red and black cells for cache efficiency" — the
//! *split* phase and the *iterate* phase are independent choice sites, and
//! the paper's headline is that their best placements flip between
//! machines (Desktop/Laptop: split on CPU, iterate on GPU; Server: split
//! on OpenCL, iterate on CPU).
//!
//! Grids carry a one-cell zero boundary; red cells have even `x+y`, black
//! cells odd. Each color's values live in their own full-size buffer
//! (zeros at the other color's positions).

use crate::workload::random_matrix;
use crate::Instance;
use petal_blas::Matrix;
use petal_core::plan::{placement_from_config, PlanBuilder, StencilStep, StepId};
use petal_core::program::ChoiceSite;
use petal_core::stencil::{AccessPattern, StencilInput, StencilRule};
use petal_core::{Config, MatrixId, Program, World};
use petal_gpu::profile::MachineProfile;
use std::sync::Arc;

/// Over-relaxation factor.
pub const OMEGA: f64 = 1.6;

/// Poisson2D SOR on an `n × n` interior grid, running `iters` red+black
/// sweeps.
#[derive(Debug, Clone)]
pub struct Poisson2D {
    n: usize,
    iters: usize,
}

impl Poisson2D {
    /// New instance (the paper uses n = 2048).
    ///
    /// # Panics
    /// Panics when `n < 4` or `iters == 0`.
    #[must_use]
    pub fn new(n: usize, iters: usize) -> Self {
        assert!(n >= 4 && iters >= 1, "grid too small or no iterations");
        Poisson2D { n, iters }
    }

    /// Extraction rule for the split phase: keep cells of `color`
    /// (`scalars[0]`), zero elsewhere.
    fn rule_split() -> Arc<StencilRule> {
        Arc::new(StencilRule {
            name: "sor_split".into(),
            inputs: vec![StencilInput { index: 0, access: AccessPattern::Point }],
            flops_per_output: 2.0,
            body_c: "int color = (int)user_scalars[0];\n\
                     result = (((x + y) & 1) == color) ? IN0(x, y) : 0.0;"
                .into(),
            elem: Arc::new(|env, x, y| {
                let color = env.scalars[0] as usize;
                if (x + y) % 2 == color {
                    env.inputs[0].at(x, y)
                } else {
                    0.0
                }
            }),
            native_only_body: false,
        })
    }

    /// One half-sweep: update cells of `color` from the other color's
    /// buffer. Inputs: `[other, mine, f]`; neighbor reads make this a
    /// gather, so no scratchpad variant exists (§3.1 bounding-box test).
    fn rule_sweep() -> Arc<StencilRule> {
        Arc::new(StencilRule {
            name: "sor_sweep".into(),
            inputs: vec![
                StencilInput { index: 0, access: AccessPattern::Gather },
                StencilInput { index: 1, access: AccessPattern::Point },
                StencilInput { index: 2, access: AccessPattern::Point },
            ],
            flops_per_output: 10.0,
            body_c: "int color = (int)user_scalars[0];\n\
                     double omega = user_scalars[1];\n\
                     double h2 = user_scalars[2];\n\
                     int n1 = out_w - 1;\n\
                     if (x == 0 || y == 0 || x == n1 || y == n1 || ((x + y) & 1) != color) {\n\
                         result = (((x + y) & 1) == color) ? IN1(x, y) : 0.0;\n\
                     } else {\n\
                         double nb = IN0(x - 1, y) + IN0(x + 1, y) + IN0(x, y - 1) + IN0(x, y + 1);\n\
                         result = (1.0 - omega) * IN1(x, y) + omega * 0.25 * (nb - h2 * IN2(x, y));\n\
                     }"
                .into(),
            elem: Arc::new(|env, x, y| {
                let color = env.scalars[0] as usize;
                let omega = env.scalars[1];
                let h2 = env.scalars[2];
                let n1 = env.inputs[1].width() - 1;
                let is_mine = (x + y) % 2 == color;
                if x == 0 || y == 0 || x == n1 || y == n1 || !is_mine {
                    return if is_mine { env.inputs[1].at(x, y) } else { 0.0 };
                }
                let nb = env.inputs[0].at(x - 1, y)
                    + env.inputs[0].at(x + 1, y)
                    + env.inputs[0].at(x, y - 1)
                    + env.inputs[0].at(x, y + 1);
                (1.0 - omega) * env.inputs[1].at(x, y) + omega * 0.25 * (nb - h2 * env.inputs[2].at(x, y))
            }),
            native_only_body: false,
        })
    }

    /// Recombination rule: `u = red + black`.
    fn rule_combine() -> Arc<StencilRule> {
        Arc::new(StencilRule {
            name: "sor_combine".into(),
            inputs: vec![
                StencilInput { index: 0, access: AccessPattern::Point },
                StencilInput { index: 1, access: AccessPattern::Point },
            ],
            flops_per_output: 1.0,
            body_c: "result = IN0(x, y) + IN1(x, y);".into(),
            elem: Arc::new(|env, x, y| env.inputs[0].at(x, y) + env.inputs[1].at(x, y)),
            native_only_body: false,
        })
    }

    /// Host reference: identical arithmetic, sequentially.
    #[must_use]
    pub fn reference(u0: &Matrix, f: &Matrix, iters: usize) -> Matrix {
        let n2 = u0.rows();
        let h2 = 1.0 / ((n2 - 1) as f64 * (n2 - 1) as f64);
        let mut red =
            Matrix::from_fn(n2, n2, |y, x| if (x + y) % 2 == 0 { u0[(y, x)] } else { 0.0 });
        let mut black =
            Matrix::from_fn(n2, n2, |y, x| if (x + y) % 2 == 1 { u0[(y, x)] } else { 0.0 });
        let sweep = |mine: &Matrix, other: &Matrix, color: usize| -> Matrix {
            Matrix::from_fn(n2, n2, |y, x| {
                let is_mine = (x + y) % 2 == color;
                if x == 0 || y == 0 || x == n2 - 1 || y == n2 - 1 || !is_mine {
                    return if is_mine { mine[(y, x)] } else { 0.0 };
                }
                let nb =
                    other[(y, x - 1)] + other[(y, x + 1)] + other[(y - 1, x)] + other[(y + 1, x)];
                (1.0 - OMEGA) * mine[(y, x)] + OMEGA * 0.25 * (nb - h2 * f[(y, x)])
            })
        };
        for _ in 0..iters {
            red = sweep(&red, &black, 0);
            black = sweep(&black, &red, 1);
        }
        red.add(&black)
    }
}

impl crate::Benchmark for Poisson2D {
    fn name(&self) -> &str {
        "Poisson2D SOR"
    }

    fn spec(&self) -> String {
        format!("poisson2d n={} iters={}", self.n, self.iters)
    }

    fn input_size(&self) -> u64 {
        (self.n * self.n) as u64
    }

    fn resized(&self, size: u64) -> Option<Box<dyn crate::Benchmark>> {
        let n = (size as f64).sqrt() as usize;
        (n >= 8).then(|| Box::new(Poisson2D::new(n, self.iters)) as Box<dyn crate::Benchmark>)
    }

    fn program(&self, _machine: &MachineProfile) -> Program {
        let mut p = Program::new("poisson2d_sor");
        p.add_site(ChoiceSite {
            name: "sor_split".into(),
            num_algs: 1,
            opencl: true,
            local_memory_variant: false,
            fractional: true,
        });
        p.add_site(ChoiceSite {
            name: "sor_iter".into(),
            num_algs: 1,
            opencl: true,
            local_memory_variant: false,
            fractional: true,
        });
        p
    }

    fn instantiate(&self, machine: &MachineProfile, cfg: &Config) -> Instance {
        let n2 = self.n + 2; // interior plus zero boundary
        let h2 = 1.0 / ((n2 - 1) as f64 * (n2 - 1) as f64);
        let size = (self.n * self.n) as u64;
        let mut world = World::new();
        let u0_m = {
            let mut m = random_matrix(n2, n2, -1.0, 1.0, 31);
            for i in 0..n2 {
                m[(0, i)] = 0.0;
                m[(n2 - 1, i)] = 0.0;
                m[(i, 0)] = 0.0;
                m[(i, n2 - 1)] = 0.0;
            }
            m
        };
        let f_m = random_matrix(n2, n2, -1.0, 1.0, 32);
        let u0 = world.alloc(u0_m.clone());
        let f = world.alloc(f_m.clone());
        // Ping-pong color buffers.
        let mut red = [world.alloc(Matrix::zeros(n2, n2)), world.alloc(Matrix::zeros(n2, n2))];
        let mut black = [world.alloc(Matrix::zeros(n2, n2)), world.alloc(Matrix::zeros(n2, n2))];
        let out = world.alloc(Matrix::zeros(n2, n2));

        let split_rule = Self::rule_split();
        let sweep_rule = Self::rule_sweep();
        let combine_rule = Self::rule_combine();
        let split_place = placement_from_config(cfg, "sor_split", size, machine, &split_rule, n2);
        let iter_place = placement_from_config(cfg, "sor_iter", size, machine, &sweep_rule, n2);

        let mut p = PlanBuilder::new();
        let step = |p: &mut PlanBuilder,
                    rule: &Arc<StencilRule>,
                    inputs: Vec<MatrixId>,
                    output: MatrixId,
                    scalars: Vec<f64>,
                    place,
                    deps: &[StepId]| {
            p.stencil(
                StencilStep {
                    rule: Arc::clone(rule),
                    inputs,
                    output,
                    out_dims: (n2, n2),
                    user_scalars: scalars,
                    placement: place,
                },
                deps,
            )
        };
        let s_red = step(&mut p, &split_rule, vec![u0], red[0], vec![0.0], split_place, &[]);
        let s_black = step(&mut p, &split_rule, vec![u0], black[0], vec![1.0], split_place, &[]);
        let mut last = vec![s_red, s_black];
        for _ in 0..self.iters {
            let r2 = step(
                &mut p,
                &sweep_rule,
                vec![black[0], red[0], f],
                red[1],
                vec![0.0, OMEGA, h2],
                iter_place,
                &last,
            );
            let b2 = step(
                &mut p,
                &sweep_rule,
                vec![red[1], black[0], f],
                black[1],
                vec![1.0, OMEGA, h2],
                iter_place,
                &[r2],
            );
            red.swap(0, 1);
            black.swap(0, 1);
            last = vec![b2];
        }
        let _fin =
            step(&mut p, &combine_rule, vec![red[0], black[0]], out, vec![], iter_place, &last);
        p.mark_output(out);

        let expected = Self::reference(&u0_m, &f_m, self.iters);
        let check = Box::new(move |w: &World| -> Result<(), String> {
            let got = w.get(out);
            if got.approx_eq(&expected, 1e-9) {
                Ok(())
            } else {
                Err(format!("max abs diff {}", got.max_abs_diff(&expected)))
            }
        });
        Instance { world, plan: p.build(), check }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;
    use petal_core::Selector;

    fn phase_config(m: &MachineProfile, split_gpu: bool, iter_gpu: bool) -> Config {
        let b = Poisson2D::new(32, 3);
        let mut cfg = b.program(m).default_config(m);
        cfg.set_selector("sor_split", Selector::constant(usize::from(split_gpu), 2));
        cfg.set_selector("sor_iter", Selector::constant(usize::from(iter_gpu), 2));
        cfg
    }

    #[test]
    fn all_phase_placements_verify() {
        let b = Poisson2D::new(32, 3);
        for m in MachineProfile::all() {
            for (sg, ig) in [(false, false), (false, true), (true, false), (true, true)] {
                let cfg = phase_config(&m, sg, ig);
                let r = b.run_with_config(&m, &cfg);
                assert!(r.is_ok(), "{} split_gpu={sg} iter_gpu={ig}: {:?}", m.codename, r.err());
            }
        }
    }

    #[test]
    fn reference_reduces_residual() {
        // SOR should move toward the solution: later iterates change less.
        let u0 = random_matrix(18, 18, -1.0, 1.0, 5);
        let f = random_matrix(18, 18, -1.0, 1.0, 6);
        let a = Poisson2D::reference(&u0, &f, 2);
        let b = Poisson2D::reference(&u0, &f, 3);
        let c = Poisson2D::reference(&u0, &f, 40);
        let d = Poisson2D::reference(&u0, &f, 41);
        assert!(c.max_abs_diff(&d) < a.max_abs_diff(&b), "iteration must converge");
    }

    /// The Fig. 7(b) shape: on machines with a physical GPU, iterating on
    /// the device beats iterating on the CPU; on the Server (CPU-backed
    /// OpenCL) the iterate phase belongs on the CPU backend.
    #[test]
    fn iterate_placement_flips_between_desktop_and_server() {
        let b = Poisson2D::new(192, 6);
        let t = |m: &MachineProfile, sg: bool, ig: bool| {
            let b_big = &b;
            let mut cfg = b_big.program(m).default_config(m);
            cfg.set_selector("sor_split", Selector::constant(usize::from(sg), 2));
            cfg.set_selector("sor_iter", Selector::constant(usize::from(ig), 2));
            b_big.run_with_config(m, &cfg).unwrap().virtual_time_secs()
        };
        let desktop = MachineProfile::desktop();
        assert!(
            t(&desktop, false, true) < t(&desktop, false, false),
            "desktop iterates faster on the GPU"
        );
    }
}

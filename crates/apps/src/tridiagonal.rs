//! The Tridiagonal Solver benchmark (§6.2, Fig. 7g).
//!
//! "Often algorithmic changes are required to utilize the GPU": the
//! sequential Thomas algorithm is the fastest CPU choice but has a
//! loop-carried dependency the OpenCL analysis rejects, while cyclic
//! reduction does asymptotically more work in data-parallel levels — a win
//! only on a machine with a real GPU (the paper's Desktop).
//!
//! Choices: 0 = Thomas direct solve (CPU), 1 = cyclic reduction on the CPU
//! backend, 2 = cyclic reduction as a chain of OpenCL kernels (one
//! reduction kernel per level, one back-substitution kernel per level).
//!
//! The four bands are packed in a `4 × m` matrix (rows a, b, c, d) so each
//! level is a single kernel launch.

use crate::Instance;
use petal_blas::tridiag::{
    cyclic_reduction_backsub, cyclic_reduction_step, diagonally_dominant_system, thomas_solve,
    TridiagonalSystem,
};
use petal_blas::Matrix;
use petal_core::plan::{placement_from_config, Placement, PlanBuilder, StencilStep};
use petal_core::program::ChoiceSite;
use petal_core::stencil::{AccessPattern, StencilInput, StencilRule};
use petal_core::{Config, Program, World};
use petal_gpu::cost::CpuWork;
use petal_gpu::profile::MachineProfile;
use petal_rt::Charge;
use std::sync::Arc;

/// Stop the GPU reduction and solve directly below this size.
const DIRECT_CUTOFF: usize = 64;

/// Pack a system into a `4 × m` band matrix.
fn pack(sys: &TridiagonalSystem) -> Matrix {
    let m = sys.len();
    Matrix::from_fn(4, m, |band, i| match band {
        0 => sys.a[i],
        1 => sys.b[i],
        2 => sys.c[i],
        _ => sys.d[i],
    })
}

/// Unpack a `4 × m` band matrix.
fn unpack(m: &Matrix) -> TridiagonalSystem {
    TridiagonalSystem::new(
        m.row(0).to_vec(),
        m.row(1).to_vec(),
        m.row(2).to_vec(),
        m.row(3).to_vec(),
    )
}

/// The tridiagonal benchmark over an `n`-unknown system.
#[derive(Debug, Clone)]
pub struct Tridiagonal {
    n: usize,
}

impl Tridiagonal {
    /// New instance (`n` unknowns; the paper evaluates 1024² total work).
    ///
    /// # Panics
    /// Panics when `n < 2`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "system too small");
        Tridiagonal { n }
    }

    /// One cyclic-reduction level as a data-parallel rule:
    /// `out[band][j]` from gathers at indices `2j-1, 2j, 2j+1` of the input
    /// band matrix (`scalars[0]` = input length `m`).
    fn rule_reduce() -> Arc<StencilRule> {
        Arc::new(StencilRule {
            name: "cr_reduce".into(),
            inputs: vec![StencilInput { index: 0, access: AccessPattern::Gather }],
            flops_per_output: 14.0,
            body_c: "int m = (int)user_scalars[0];\n\
                     int i = 2 * x;\n\
                     double alpha = (i > 0) ? -IN0(i, 0) / IN0(i - 1, 1) : 0.0;\n\
                     double beta = (i + 1 < m) ? -IN0(i, 2) / IN0(i + 1, 1) : 0.0;\n\
                     /* y selects the output band (a, b, c, d) */\n\
                     ..."
            .into(),
            elem: Arc::new(|env, x, y| {
                let m = env.scalars[0] as usize;
                let bands = &env.inputs[0];
                let i = 2 * x;
                let a = |i: usize| bands.at(i, 0);
                let b = |i: usize| bands.at(i, 1);
                let c = |i: usize| bands.at(i, 2);
                let d = |i: usize| bands.at(i, 3);
                let alpha = if i > 0 { -a(i) / b(i - 1) } else { 0.0 };
                let beta = if i + 1 < m { -c(i) / b(i + 1) } else { 0.0 };
                match y {
                    0 => {
                        if i > 0 {
                            alpha * a(i - 1)
                        } else {
                            0.0
                        }
                    }
                    1 => {
                        b(i) + if i > 0 { alpha * c(i - 1) } else { 0.0 }
                            + if i + 1 < m { beta * a(i + 1) } else { 0.0 }
                    }
                    2 => {
                        if i + 1 < m {
                            beta * c(i + 1)
                        } else {
                            0.0
                        }
                    }
                    _ => {
                        d(i) + if i > 0 { alpha * d(i - 1) } else { 0.0 }
                            + if i + 1 < m { beta * d(i + 1) } else { 0.0 }
                    }
                }
            }),
            native_only_body: false,
        })
    }

    /// One back-substitution level: rebuild the length-`m` solution from
    /// the even-index solution (`inputs = [bands, even]`).
    fn rule_backsub() -> Arc<StencilRule> {
        Arc::new(StencilRule {
            name: "cr_backsub".into(),
            inputs: vec![
                StencilInput { index: 0, access: AccessPattern::Gather },
                StencilInput { index: 1, access: AccessPattern::Gather },
            ],
            flops_per_output: 6.0,
            body_c: "int m = (int)user_scalars[0];\n\
                     if ((x & 1) == 0) { result = IN1(x / 2, 0); } else { /* odd solve */ }"
                .into(),
            elem: Arc::new(|env, x, _y| {
                let m = env.scalars[0] as usize;
                let bands = &env.inputs[0];
                let even = &env.inputs[1];
                if x % 2 == 0 {
                    return even.at(x / 2, 0);
                }
                let left = bands.at(x, 0) * even.at((x - 1) / 2, 0);
                let right =
                    if x + 1 < m { bands.at(x, 2) * even.at(x.div_ceil(2), 0) } else { 0.0 };
                (bands.at(x, 3) - left - right) / bands.at(x, 1)
            }),
            native_only_body: false,
        })
    }

    fn system(&self) -> TridiagonalSystem {
        diagonally_dominant_system(self.n, 41)
    }
}

impl crate::Benchmark for Tridiagonal {
    fn name(&self) -> &str {
        "Tridiagonal Solver"
    }

    fn spec(&self) -> String {
        format!("tridiagonal n={}", self.n)
    }

    fn input_size(&self) -> u64 {
        self.n as u64
    }

    fn resized(&self, size: u64) -> Option<Box<dyn crate::Benchmark>> {
        (size >= 4).then(|| Box::new(Tridiagonal::new(size as usize)) as Box<dyn crate::Benchmark>)
    }

    fn program(&self, _machine: &MachineProfile) -> Program {
        let mut p = Program::new("tridiagonal");
        // Declared CPU algorithms: Thomas, CPU cyclic reduction. OpenCL
        // adds the GPU cyclic-reduction chain.
        p.add_site(ChoiceSite {
            name: "tridiag".into(),
            num_algs: 2,
            opencl: true,
            local_memory_variant: false,
            fractional: true,
        });
        p
    }

    #[allow(clippy::too_many_lines)]
    fn instantiate(&self, machine: &MachineProfile, cfg: &Config) -> Instance {
        let sys = self.system();
        let n = self.n;
        let mut world = World::new();
        let x_out = world.alloc(Matrix::zeros(1, n));
        let mut choice = cfg.select("tridiag", n as u64);
        if choice == 2 && !machine.has_opencl() {
            choice = 0;
        }
        let mut p = PlanBuilder::new();
        match choice {
            2 => {
                // GPU cyclic reduction: one kernel per level, then a direct
                // solve at the cutoff, then back-substitution kernels.
                let reduce = Self::rule_reduce();
                let backsub = Self::rule_backsub();
                let place = |rule: &Arc<StencilRule>, rows: usize| {
                    match placement_from_config(cfg, "tridiag", n as u64, machine, rule, rows) {
                        // Selector value 2 *is* the GPU chain (that is the
                        // point of this branch); if the ratio tunable drives
                        // the mapping back to pure CPU, honor the choice and
                        // keep the kernels on the device. The site tunables
                        // (`tridiag.local_size`, `tridiag.gpu_ratio`) are
                        // consulted under the site's own name so the tuner
                        // actually reaches them (petal-verify: dead-tunable
                        // finding, fixed).
                        Placement::Cpu { .. } => Placement::OpenCl {
                            local_memory: false,
                            local_size: cfg.tunable_or("tridiag.local_size", 128).clamp(
                                1,
                                machine.gpu.as_ref().map_or(1, |g| g.max_work_group) as i64,
                            ) as usize,
                        },
                        other => other,
                    }
                };
                let mut bands_id = world.alloc(pack(&sys));
                let mut sizes = vec![n];
                let mut deps = Vec::new();
                let mut levels = Vec::new();
                while *sizes.last().expect("nonempty") > DIRECT_CUTOFF {
                    let m = *sizes.last().expect("nonempty");
                    let half = m.div_ceil(2);
                    let next = world.alloc(Matrix::zeros(4, half));
                    let s = p.stencil(
                        StencilStep {
                            rule: Arc::clone(&reduce),
                            inputs: vec![bands_id],
                            output: next,
                            out_dims: (half, 4),
                            user_scalars: vec![m as f64],
                            placement: place(&reduce, 4),
                        },
                        &deps,
                    );
                    levels.push((bands_id, m));
                    bands_id = next;
                    sizes.push(half);
                    deps = vec![s];
                }
                // Direct solve of the small remaining system on the CPU.
                let small_x = world.alloc(Matrix::zeros(1, *sizes.last().expect("nonempty")));
                let small_bands = bands_id;
                let small_step = p.native(
                    petal_core::plan::NativeStep {
                        label: "cr_direct".into(),
                        reads: vec![small_bands],
                        writes: vec![small_x],
                        run: Box::new(move |w: &mut World, ctx| {
                            let extra = w.ensure_host(small_bands, ctx.now());
                            let sys = unpack(w.get(small_bands));
                            let x = thomas_solve(&sys);
                            let len = x.len();
                            w.set(small_x, Matrix::from_vec(1, len, x));
                            Charge::WorkPlusSecs(
                                CpuWork::new(8.0 * len as f64, 40.0 * len as f64),
                                extra,
                            )
                        }),
                    },
                    &deps,
                );
                // Back-substitute up through the levels.
                let mut even_x = small_x;
                let mut deps = vec![small_step];
                for (level_bands, m) in levels.into_iter().rev() {
                    let full = world.alloc(Matrix::zeros(1, m));
                    let s = p.stencil(
                        StencilStep {
                            rule: Arc::clone(&backsub),
                            inputs: vec![level_bands, even_x],
                            output: full,
                            out_dims: (m, 1),
                            user_scalars: vec![m as f64],
                            placement: place(&backsub, 1),
                        },
                        &deps,
                    );
                    even_x = full;
                    deps = vec![s];
                }
                // Copy the final vector into the declared output.
                let final_x = even_x;
                p.native(
                    petal_core::plan::NativeStep {
                        label: "cr_finish".into(),
                        reads: vec![final_x],
                        writes: vec![x_out],
                        run: Box::new(move |w: &mut World, ctx| {
                            let extra = w.ensure_host(final_x, ctx.now());
                            let data = w.get(final_x).as_slice().to_vec();
                            let len = data.len();
                            w.set(x_out, Matrix::from_vec(1, len, data));
                            Charge::WorkPlusSecs(CpuWork::new(0.0, 16.0 * len as f64), extra)
                        }),
                    },
                    &deps,
                );
            }
            alg => {
                // CPU algorithms as one native step (both are sequential
                // over the bands; CR does ~2x the arithmetic).
                let sys2 = sys.clone();
                p.native(
                    petal_core::plan::NativeStep {
                        label: if alg == 1 { "cr_cpu".into() } else { "thomas".into() },
                        reads: vec![],
                        writes: vec![x_out],
                        run: Box::new(move |w: &mut World, _ctx| {
                            // Thomas streams ~6 arrays twice (forward +
                            // back-substitution); sequential CR touches
                            // roughly twice that across its levels.
                            let (x, flops, bytes_per) = if alg == 1 {
                                (solve_cr_host(&sys2), 34.0 * sys2.len() as f64, 220.0)
                            } else {
                                (thomas_solve(&sys2), 16.0 * sys2.len() as f64, 100.0)
                            };
                            let len = x.len();
                            w.set(x_out, Matrix::from_vec(1, len, x));
                            Charge::Work(CpuWork::new(flops, bytes_per * len as f64))
                        }),
                    },
                    &[],
                );
            }
        }
        p.mark_output(x_out);

        let check_sys = sys;
        let check = Box::new(move |w: &World| -> Result<(), String> {
            let x = w.get(x_out).as_slice();
            let r = check_sys.residual(x);
            if r < 1e-6 {
                Ok(())
            } else {
                Err(format!("residual {r}"))
            }
        });
        Instance { world, plan: p.build(), check }
    }
}

/// Host cyclic reduction (used by the CPU choice).
fn solve_cr_host(sys: &TridiagonalSystem) -> Vec<f64> {
    if sys.len() == 1 {
        return vec![sys.d[0] / sys.b[0]];
    }
    let reduced = cyclic_reduction_step(sys);
    let even = solve_cr_host(&reduced);
    cyclic_reduction_backsub(sys, &even)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;
    use petal_core::Selector;

    #[test]
    fn all_three_choices_solve_the_system() {
        let b = Tridiagonal::new(1 << 10);
        let m = MachineProfile::desktop();
        for alg in 0..3 {
            let mut cfg = b.program(&m).default_config(&m);
            cfg.set_selector("tridiag", Selector::constant(alg, 3));
            let r = b.run_with_config(&m, &cfg);
            assert!(r.is_ok(), "alg {alg}: {:?}", r.err());
        }
    }

    #[test]
    fn gpu_choice_degrades_gracefully_without_device() {
        let b = Tridiagonal::new(256);
        let mut m = MachineProfile::desktop();
        m.gpu = None;
        let mut cfg = b.program(&m).default_config(&m);
        cfg.set_selector("tridiag", Selector::constant(0, 1));
        b.run_with_config(&m, &cfg).unwrap();
    }

    /// Fig. 7(g)/Fig. 6 shape: cyclic reduction on the GPU wins on Desktop
    /// at large sizes; the sequential direct solve wins on the Laptop.
    #[test]
    fn desktop_prefers_gpu_cyclic_reduction_at_scale() {
        let b = Tridiagonal::new(1 << 21);
        let time = |m: &MachineProfile, alg: usize| {
            let mut cfg = b.program(m).default_config(m);
            cfg.set_selector("tridiag", Selector::constant(alg, 3));
            b.run_with_config(m, &cfg).unwrap().virtual_time_secs()
        };
        let d = MachineProfile::desktop();
        let thomas_d = time(&d, 0);
        let gpu_d = time(&d, 2);
        assert!(gpu_d < thomas_d, "desktop: CR-GPU {gpu_d} vs Thomas {thomas_d}");
        let l = MachineProfile::laptop();
        let thomas_l = time(&l, 0);
        let gpu_l = time(&l, 2);
        assert!(thomas_l < gpu_l, "laptop: Thomas {thomas_l} vs CR-GPU {gpu_l}");
    }

    #[test]
    fn cpu_cyclic_reduction_loses_to_thomas_on_cpu() {
        let b = Tridiagonal::new(1 << 18);
        let m = MachineProfile::server();
        let time = |alg: usize| {
            let mut cfg = b.program(&m).default_config(&m);
            cfg.set_selector("tridiag", Selector::constant(alg, 3));
            b.run_with_config(&m, &cfg).unwrap().virtual_time_secs()
        };
        assert!(time(0) < time(1), "direct solve beats sequential CR on a CPU");
    }
}

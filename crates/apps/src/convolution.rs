//! The SeparableConvolution benchmark (Fig. 1, Fig. 2, Fig. 7c).
//!
//! Convolves a 2D matrix with a separable kernel. The top-level transform
//! has two rule choices exactly as in Fig. 1: a single-pass 2D convolution,
//! or two 1D passes through an intermediate `buffer`. Each pass can run on
//! the CPU backend or as an OpenCL kernel with or without the scratchpad
//! (local-memory) variant — the four OpenCL mappings whose crossovers
//! Fig. 2 plots.

use crate::workload::{random_matrix, triangle_kernel};
use crate::Instance;
use petal_blas::Matrix;
use petal_core::plan::{placement_from_config, PlanBuilder, StencilStep};
use petal_core::program::ChoiceSite;
use petal_core::stencil::{AccessPattern, StencilInput, StencilRule};
use petal_core::{Config, Program, Selector, Tunable, World};
use petal_gpu::profile::MachineProfile;
use std::sync::Arc;

/// The four hand-pinned OpenCL mappings of Fig. 2, plus the autotuned row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvMapping {
    /// Single-pass 2D kernel, global memory only.
    TwoDNoLocal,
    /// Single-pass 2D kernel with scratchpad staging.
    TwoDLocalMem,
    /// Two 1D passes, global memory only.
    SeparableNoLocal,
    /// Two 1D passes with scratchpad staging.
    SeparableLocalMem,
}

impl ConvMapping {
    /// All four mappings in Fig. 2's legend order.
    #[must_use]
    pub fn all() -> [ConvMapping; 4] {
        [
            ConvMapping::TwoDLocalMem,
            ConvMapping::TwoDNoLocal,
            ConvMapping::SeparableLocalMem,
            ConvMapping::SeparableNoLocal,
        ]
    }

    /// Legend label used by the Fig. 2 harness.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ConvMapping::TwoDLocalMem => "2D Localmem",
            ConvMapping::TwoDNoLocal => "2D No-local",
            ConvMapping::SeparableLocalMem => "Separable Localmem",
            ConvMapping::SeparableNoLocal => "Separable No-local",
        }
    }
}

/// SeparableConvolution over an `n × n` input with a width-`k` kernel.
#[derive(Debug, Clone)]
pub struct SeparableConvolution {
    n: usize,
    k: usize,
}

impl SeparableConvolution {
    /// New instance (`n` ≥ 3·`k` keeps the output non-degenerate; the paper
    /// uses n = 3520, k ∈ 3..17 odd).
    ///
    /// # Panics
    /// Panics when `k` is even, zero, or too large for `n`.
    #[must_use]
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k % 2 == 1 && k >= 3, "kernel width must be odd and ≥ 3");
        assert!(n > 3 * k, "input too small for kernel");
        SeparableConvolution { n, k }
    }

    /// Kernel width.
    #[must_use]
    pub fn kernel_width(&self) -> usize {
        self.k
    }

    /// The `Convolve2D` rule of Fig. 1: one `k × k` stencil pass.
    #[must_use]
    pub fn rule_2d(k: usize) -> Arc<StencilRule> {
        Arc::new(StencilRule {
            name: "convolve2d".into(),
            inputs: vec![
                StencilInput { index: 0, access: AccessPattern::Stencil { w: k, h: k } },
                StencilInput { index: 1, access: AccessPattern::All },
            ],
            flops_per_output: 3.0 * (k * k) as f64,
            body_c: "int k = (int)user_scalars[0];\n\
                     for (int j = 0; j < k; j++)\n\
                     for (int i = 0; i < k; i++)\n\
                         result += IN0(x + i, y + j) * IN1(i, 0) * IN1(j, 0);"
                .into(),
            elem: Arc::new(|env, x, y| {
                let k = env.scalars[0] as usize;
                let mut acc = 0.0;
                for j in 0..k {
                    for i in 0..k {
                        acc += env.inputs[0].at(x + i, y + j)
                            * env.inputs[1].at(i, 0)
                            * env.inputs[1].at(j, 0);
                    }
                }
                acc
            }),
            native_only_body: false,
        })
    }

    /// The `ConvolveRows` rule: horizontal 1D pass.
    #[must_use]
    pub fn rule_rows(k: usize) -> Arc<StencilRule> {
        Arc::new(StencilRule {
            name: "convolve_rows".into(),
            inputs: vec![
                StencilInput { index: 0, access: AccessPattern::Stencil { w: k, h: 1 } },
                StencilInput { index: 1, access: AccessPattern::All },
            ],
            flops_per_output: 2.0 * k as f64,
            body_c: "int k = (int)user_scalars[0];\n\
                     for (int i = 0; i < k; i++)\n\
                         result += IN0(x + i, y) * IN1(i, 0);"
                .into(),
            elem: Arc::new(|env, x, y| {
                let k = env.scalars[0] as usize;
                (0..k).map(|i| env.inputs[0].at(x + i, y) * env.inputs[1].at(i, 0)).sum()
            }),
            native_only_body: false,
        })
    }

    /// The `ConvolveColumns` rule: vertical 1D pass.
    #[must_use]
    pub fn rule_cols(k: usize) -> Arc<StencilRule> {
        Arc::new(StencilRule {
            name: "convolve_columns".into(),
            inputs: vec![
                StencilInput { index: 0, access: AccessPattern::Stencil { w: 1, h: k } },
                StencilInput { index: 1, access: AccessPattern::All },
            ],
            flops_per_output: 2.0 * k as f64,
            body_c: "int k = (int)user_scalars[0];\n\
                     for (int i = 0; i < k; i++)\n\
                         result += IN0(x, y + i) * IN1(i, 0);"
                .into(),
            elem: Arc::new(|env, x, y| {
                let k = env.scalars[0] as usize;
                (0..k).map(|i| env.inputs[0].at(x, y + i) * env.inputs[1].at(i, 0)).sum()
            }),
            native_only_body: false,
        })
    }

    /// A configuration that pins one of the four Fig. 2 OpenCL mappings.
    #[must_use]
    pub fn mapping_config(&self, machine: &MachineProfile, mapping: ConvMapping) -> Config {
        use crate::Benchmark;
        let mut cfg = self.program(machine).default_config(machine);
        let (separable, local) = match mapping {
            ConvMapping::TwoDNoLocal => (false, false),
            ConvMapping::TwoDLocalMem => (false, true),
            ConvMapping::SeparableNoLocal => (true, false),
            ConvMapping::SeparableLocalMem => (true, true),
        };
        cfg.set_selector("separable", Selector::constant(usize::from(separable), 2));
        let backend = if local { 2 } else { 1 };
        for t in ["convolve2d", "convolve_rows", "convolve_columns"] {
            cfg.set_selector(t, Selector::constant(backend, 3));
            cfg.set_tunable(&format!("{t}.gpu_ratio"), Tunable::new(8, 0, 8));
        }
        cfg
    }

    /// Host reference: direct 2D convolution with the separable kernel.
    #[must_use]
    pub fn reference(input: &Matrix, kernel: &Matrix) -> Matrix {
        let k = kernel.cols();
        let out_w = input.cols() - k + 1;
        let out_h = input.rows() - k + 1;
        Matrix::from_fn(out_h, out_w, |y, x| {
            let mut acc = 0.0;
            for j in 0..k {
                for i in 0..k {
                    acc += input[(y + j, x + i)] * kernel[(0, i)] * kernel[(0, j)];
                }
            }
            acc
        })
    }
}

impl crate::Benchmark for SeparableConvolution {
    fn name(&self) -> &str {
        "SeparableConvolution"
    }

    fn spec(&self) -> String {
        format!("convolution n={} k={}", self.n, self.k)
    }

    fn input_size(&self) -> u64 {
        (self.n * self.n) as u64
    }

    fn resized(&self, size: u64) -> Option<Box<dyn crate::Benchmark>> {
        let n = (size as f64).sqrt() as usize;
        (n > 3 * self.k)
            .then(|| Box::new(SeparableConvolution::new(n, self.k)) as Box<dyn crate::Benchmark>)
    }

    fn program(&self, _machine: &MachineProfile) -> Program {
        let mut p = Program::new("separable_convolution");
        // The algorithmic choice of Fig. 1 (single 2D pass vs. two 1D
        // passes) plus a backend/mapping site per Convolve* transform.
        p.add_site(ChoiceSite {
            name: "separable".into(),
            num_algs: 2,
            opencl: false,
            local_memory_variant: false,
            fractional: false,
        });
        for t in ["convolve2d", "convolve_rows", "convolve_columns"] {
            p.add_site(ChoiceSite {
                name: t.into(),
                num_algs: 1,
                opencl: true,
                local_memory_variant: true,
                fractional: true,
            });
        }
        p
    }

    #[allow(clippy::too_many_lines)]
    fn instantiate(&self, machine: &MachineProfile, cfg: &Config) -> Instance {
        let (n, k) = (self.n, self.k);
        let mut world = World::new();
        let input = world.alloc(random_matrix(n, n, -1.0, 1.0, 21));
        let kernel = world.alloc(triangle_kernel(k));
        let out_n = n - k + 1;
        let out = world.alloc(Matrix::zeros(out_n, out_n));

        let size = (n * n) as u64;
        let separable = cfg.select("separable", size) == 1;
        let mut p = PlanBuilder::new();
        if separable {
            // Choice 2: ConvolveRows into `buffer`, then ConvolveColumns.
            let buffer = world.alloc(Matrix::zeros(n, out_n));
            let rows_rule = Self::rule_rows(k);
            let rows_place =
                placement_from_config(cfg, "convolve_rows", size, machine, &rows_rule, n);
            let s1 = p.stencil(
                StencilStep {
                    rule: rows_rule,
                    inputs: vec![input, kernel],
                    output: buffer,
                    out_dims: (out_n, n),
                    user_scalars: vec![k as f64],
                    placement: rows_place,
                },
                &[],
            );
            let cols_rule = Self::rule_cols(k);
            let cols_place =
                placement_from_config(cfg, "convolve_columns", size, machine, &cols_rule, out_n);
            p.stencil(
                StencilStep {
                    rule: cols_rule,
                    inputs: vec![buffer, kernel],
                    output: out,
                    out_dims: (out_n, out_n),
                    user_scalars: vec![k as f64],
                    placement: cols_place,
                },
                &[s1],
            );
        } else {
            // Choice 1: one Convolve2D pass.
            let rule = Self::rule_2d(k);
            let place = placement_from_config(cfg, "convolve2d", size, machine, &rule, out_n);
            p.stencil(
                StencilStep {
                    rule,
                    inputs: vec![input, kernel],
                    output: out,
                    out_dims: (out_n, out_n),
                    user_scalars: vec![k as f64],
                    placement: place,
                },
                &[],
            );
        }
        p.mark_output(out);

        let expected = Self::reference(&random_matrix(n, n, -1.0, 1.0, 21), &triangle_kernel(k));
        let check = Box::new(move |w: &World| -> Result<(), String> {
            let got = w.get(out);
            if got.approx_eq(&expected, 1e-9) {
                Ok(())
            } else {
                Err(format!("max abs diff {}", got.max_abs_diff(&expected)))
            }
        });
        Instance { world, plan: p.build(), check }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn all_four_mappings_compute_identical_results() {
        let b = SeparableConvolution::new(48, 5);
        let m = MachineProfile::desktop();
        for mapping in ConvMapping::all() {
            let cfg = b.mapping_config(&m, mapping);
            let r = b.run_with_config(&m, &cfg);
            assert!(r.is_ok(), "{mapping:?}: {:?}", r.err());
        }
    }

    #[test]
    fn separable_choice_changes_plan_shape() {
        let b = SeparableConvolution::new(48, 5);
        let m = MachineProfile::desktop();
        let two_d = b.instantiate(&m, &b.mapping_config(&m, ConvMapping::TwoDNoLocal));
        let sep = b.instantiate(&m, &b.mapping_config(&m, ConvMapping::SeparableNoLocal));
        assert_eq!(two_d.plan.steps().len(), 1);
        assert_eq!(sep.plan.steps().len(), 2);
    }

    #[test]
    fn cpu_backend_also_verifies() {
        let b = SeparableConvolution::new(40, 3);
        let m = MachineProfile::server();
        let cfg = b.program(&m).default_config(&m); // all-CPU defaults
        b.run_with_config(&m, &cfg).unwrap();
    }

    /// The §2.2 claim that drives Fig. 2: as the kernel widens, separable
    /// passes overtake the single 2D pass on the Desktop GPU, and the
    /// scratchpad variant overtakes the global-memory one.
    #[test]
    fn desktop_crossovers_match_paper_shape() {
        let m = MachineProfile::desktop();
        let time = |k: usize, mapping: ConvMapping| {
            let b = SeparableConvolution::new(512, k);
            let cfg = b.mapping_config(&m, mapping);
            b.run_with_config(&m, &cfg).unwrap().virtual_time_secs()
        };
        // Wide kernel: separable + local memory is the Desktop winner.
        let wide = 13;
        let sep_local = time(wide, ConvMapping::SeparableLocalMem);
        let two_d_local = time(wide, ConvMapping::TwoDLocalMem);
        let sep_global = time(wide, ConvMapping::SeparableNoLocal);
        assert!(sep_local < two_d_local, "{sep_local} vs {two_d_local}");
        assert!(sep_local < sep_global, "{sep_local} vs {sep_global}");
        // 2D grows faster with k than separable.
        let ratio_2d = time(13, ConvMapping::TwoDNoLocal) / time(3, ConvMapping::TwoDNoLocal);
        let ratio_sep =
            time(13, ConvMapping::SeparableNoLocal) / time(3, ConvMapping::SeparableNoLocal);
        assert!(ratio_2d > ratio_sep, "2D must scale worse: {ratio_2d} vs {ratio_sep}");
    }

    /// Server's CPU-backed OpenCL makes explicit prefetching pure overhead
    /// (Fig. 6: "1D kernel on OpenCL", no local memory).
    #[test]
    fn server_prefers_no_local_memory() {
        let m = MachineProfile::server();
        let b = SeparableConvolution::new(192, 7);
        let t = |mp: ConvMapping| {
            b.run_with_config(&m, &b.mapping_config(&m, mp)).unwrap().virtual_time_secs()
        };
        assert!(
            t(ConvMapping::SeparableNoLocal) < t(ConvMapping::SeparableLocalMem),
            "staging must lose on the CPU OpenCL runtime"
        );
    }
}

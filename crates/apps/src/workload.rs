//! Deterministic workload generators shared by the benchmarks, tests and
//! figure harnesses.

use petal_blas::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Whether smoke-sized inputs were requested via `PETAL_SMOKE` (any value
/// but `0`). Set by the root package's `tests/examples_smoke.rs`; examples
/// and harnesses shrink their workloads when it is on.
#[must_use]
pub fn smoke_mode() -> bool {
    std::env::var_os("PETAL_SMOKE").is_some_and(|v| v != "0")
}

/// Uniform random matrix in `[lo, hi)` with a fixed seed.
#[must_use]
pub fn random_matrix(rows: usize, cols: usize, lo: f64, hi: f64, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
}

/// Uniform random vector in `[lo, hi)`.
#[must_use]
pub fn random_vec(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// A normalized 1D convolution kernel of width `k` (triangle window).
#[must_use]
pub fn triangle_kernel(k: usize) -> Matrix {
    let mid = (k as f64 - 1.0) / 2.0;
    let mut weights: Vec<f64> = (0..k).map(|i| 1.0 + mid - (i as f64 - mid).abs()).collect();
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total;
    }
    Matrix::from_vec(1, k, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_matrix(4, 4, 0.0, 1.0, 7), random_matrix(4, 4, 0.0, 1.0, 7));
        assert_ne!(random_matrix(4, 4, 0.0, 1.0, 7), random_matrix(4, 4, 0.0, 1.0, 8));
        assert_eq!(random_vec(5, -1.0, 1.0, 3), random_vec(5, -1.0, 1.0, 3));
    }

    #[test]
    fn triangle_kernel_is_normalized_and_symmetric() {
        for k in [3, 5, 7, 17] {
            let m = triangle_kernel(k);
            let s: f64 = m.as_slice().iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "k={k}");
            assert!((m[(0, 0)] - m[(0, k - 1)]).abs() < 1e-12);
        }
    }
}

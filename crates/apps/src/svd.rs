//! The SVD benchmark (§6.2, Fig. 7f): variable-accuracy low-rank matrix
//! approximation.
//!
//! Approximates an `n × n` matrix by a rank-`k` truncated SVD computed via
//! the eigendecomposition of `AᵀA`. The autotuner's choices include:
//!
//! * how many singular values to keep (`svd_rank` — the *variable accuracy*
//!   knob; candidates that miss the accuracy target are rejected outright);
//! * where the first phase (`AᵀA`) runs — CPU, OpenCL, or a concurrent
//!   task-parallel division between both (the Desktop configuration in
//!   Fig. 6);
//! * how the nested matrix multiplies are performed, through a *separate*
//!   selector (`matmul_svd`) from the standalone Strassen benchmark — the
//!   paper's point that "the best configurations of the same sub-program in
//!   different applications vary on the same system".

use crate::strassen::build_matmul;
use crate::workload::random_matrix;
use crate::Instance;
use petal_blas::eigen::jacobi_eigh;
use petal_blas::Matrix;
use petal_core::plan::{placement_from_config, NativeStep, PlanBuilder, StencilStep};
use petal_core::program::ChoiceSite;
use petal_core::stencil::{AccessPattern, StencilInput, StencilRule};
use petal_core::{Config, Program, World};
use petal_gpu::cost::CpuWork;
use petal_gpu::profile::MachineProfile;
use petal_rt::Charge;
use std::sync::Arc;

/// The `AᵀA` rule: `B[y][x] = Σ_r A[r][y]·A[r][x]` (two column reads of
/// the same input).
#[must_use]
pub fn rule_ata() -> Arc<StencilRule> {
    Arc::new(StencilRule {
        name: "ata".into(),
        inputs: vec![
            StencilInput { index: 0, access: AccessPattern::Column },
            StencilInput { index: 0, access: AccessPattern::Column },
        ],
        flops_per_output: 0.0, // set per instantiation
        body_c: "int m = (int)user_scalars[0];\n\
                 for (int r = 0; r < m; r++)\n\
                     result += IN0(y, r) * IN0(x, r);"
            .into(),
        elem: Arc::new(|env, x, y| {
            let m = env.scalars[0] as usize;
            (0..m).map(|r| env.inputs[0].at(y, r) * env.inputs[1].at(x, r)).sum()
        }),
        native_only_body: false,
    })
}

/// The SVD benchmark over an `n × n` input with accuracy target
/// `max_relative_error`.
#[derive(Debug, Clone)]
pub struct Svd {
    n: usize,
    target: f64,
}

impl Svd {
    /// New instance (the paper uses n = 256).
    ///
    /// # Panics
    /// Panics when `n < 4` or the target is not in `(0, 1]`.
    #[must_use]
    pub fn new(n: usize, max_relative_error: f64) -> Self {
        assert!(n >= 4, "matrix too small");
        assert!(
            max_relative_error > 0.0 && max_relative_error <= 1.0,
            "target must be a relative Frobenius error in (0, 1]"
        );
        Svd { n, target: max_relative_error }
    }

    /// The accuracy target.
    #[must_use]
    pub fn target(&self) -> f64 {
        self.target
    }

    /// The benchmark's input matrix: a Gaussian kernel (rapidly decaying
    /// spectrum) plus small noise, so modest ranks meet the accuracy
    /// target while rank still trades time for quality.
    #[must_use]
    pub fn input_matrix(&self) -> Matrix {
        let noise = random_matrix(self.n, self.n, -0.003, 0.003, 61);
        Matrix::from_fn(self.n, self.n, |r, c| {
            let d = (r as f64 - c as f64) / 6.0;
            (-d * d).exp() + noise[(r, c)]
        })
    }
}

impl crate::Benchmark for Svd {
    fn name(&self) -> &str {
        "SVD"
    }

    fn spec(&self) -> String {
        format!("svd n={} target={}", self.n, crate::spec_f64(self.target))
    }

    fn input_size(&self) -> u64 {
        self.n as u64
    }

    fn resized(&self, size: u64) -> Option<Box<dyn crate::Benchmark>> {
        (size >= 8)
            .then(|| Box::new(Svd::new(size as usize, self.target)) as Box<dyn crate::Benchmark>)
    }

    fn dynamic_config_keys(&self) -> Vec<String> {
        // The kept rank `k` is captured by the Jacobi / truncation closures:
        // it changes what they compute (and the accuracy/time trade-off) but
        // is invisible to plan structure except in the degenerate k == n
        // case, so the choice-space linter must not demand a structural
        // effect from it.
        vec!["svd_rank".into()]
    }

    fn program(&self, _machine: &MachineProfile) -> Program {
        let mut p = Program::new("svd");
        p.add_site(ChoiceSite {
            name: "ata".into(),
            num_algs: 1,
            opencl: true,
            local_memory_variant: false,
            fractional: true,
        });
        // The nested multiply selector — distinct from Strassen's own.
        p.add_site(ChoiceSite {
            name: "matmul_svd".into(),
            num_algs: 6,
            opencl: true,
            local_memory_variant: false,
            fractional: true,
        });
        p.add_tunable("svd_rank", (self.n / 4).max(1) as i64, 1, self.n as i64);
        p
    }

    #[allow(clippy::too_many_lines)]
    fn instantiate(&self, machine: &MachineProfile, cfg: &Config) -> Instance {
        let n = self.n;
        let k = (cfg.tunable_or("svd_rank", (n / 4).max(1) as i64).clamp(1, n as i64)) as usize;
        let a_m = self.input_matrix();
        let mut world = World::new();
        let a = world.alloc(a_m.clone());
        let ata = world.alloc(Matrix::zeros(n, n));
        let vk = world.alloc(Matrix::zeros(n, k));
        let sigma = world.alloc(Matrix::zeros(1, k));
        let usc = world.alloc(Matrix::zeros(n, k)); // U·diag(σ)
        let vkt = world.alloc(Matrix::zeros(k, n));
        let avk = world.alloc(Matrix::zeros(n, k));
        let approx = world.alloc(Matrix::zeros(n, n));

        let mut p = PlanBuilder::new();

        // Phase 1: B = AᵀA, placeable on CPU/GPU/split (task parallelism).
        let rule = {
            let mut r = (*rule_ata()).clone();
            r.flops_per_output = 2.0 * n as f64;
            Arc::new(r)
        };
        let place = placement_from_config(cfg, "ata", n as u64, machine, &rule, n);
        let s_ata = p.stencil(
            StencilStep {
                rule,
                inputs: vec![a],
                output: ata,
                out_dims: (n, n),
                user_scalars: vec![n as f64],
                placement: place,
            },
            &[],
        );

        // Phase 2: symmetric eigendecomposition of B (sequential Jacobi).
        let s_eig = p.native(
            NativeStep {
                label: "jacobi_eigh".into(),
                reads: vec![ata],
                writes: vec![vk, sigma, vkt],
                run: Box::new(move |w: &mut World, ctx| {
                    let extra = w.ensure_host(ata, ctx.now());
                    let b = w.get(ata);
                    let eig = jacobi_eigh(b, 1e-11 * b.frobenius_norm().max(1.0), 48);
                    let vk_m = Matrix::from_fn(n, k, |r, c| eig.vectors[(r, c)]);
                    let sig: Vec<f64> =
                        eig.values.iter().take(k).map(|l| l.max(0.0).sqrt()).collect();
                    w.set(vkt, vk_m.transposed());
                    w.set(vk, vk_m);
                    w.set(sigma, Matrix::from_vec(1, k, sig));
                    // Cyclic Jacobi sweeps are ~O(n^3) per sweep.
                    Charge::WorkPlusSecs(
                        CpuWork::new(10.0 * (n * n * n) as f64, (n * n * 8) as f64),
                        extra,
                    )
                }),
            },
            &[s_ata],
        );

        // Phase 3a: A·Vk through the nested multiply selector. The
        // rectangular product is padded notionally: we run it as a native
        // leaf when the recursive selector picks a decomposition it cannot
        // apply to an n×k shape.
        let s_avk = {
            let choice = cfg.select("matmul_svd", n as u64);
            if choice == 6 && machine.has_opencl() && n == k {
                build_matmul(
                    &mut p,
                    &mut world,
                    cfg,
                    machine,
                    "matmul_svd",
                    a,
                    vk,
                    avk,
                    n,
                    &[s_eig],
                )
                .pop()
                .expect("matmul emits steps")
            } else {
                p.native(
                    NativeStep {
                        label: "avk_leaf".into(),
                        reads: vec![a, vk],
                        writes: vec![avk],
                        run: Box::new(move |w: &mut World, ctx| {
                            let extra = w.ensure_host(a, ctx.now()) + w.ensure_host(vk, ctx.now());
                            let prod = petal_blas::gemm::lapack_gemm(w.get(a), w.get(vk));
                            w.set(avk, prod);
                            Charge::WorkPlusSecs(
                                CpuWork::new(2.0 * (n * n * k) as f64 / 4.0, (n * k * 8) as f64),
                                extra,
                            )
                        }),
                    },
                    &[s_eig],
                )
            }
        };

        // Phase 3b: scale columns by 1/σ then by σ — net effect: U·diag(σ)
        // is exactly A·Vk (σ cancels), but the explicit step keeps the
        // structure (and cost) of the real pipeline.
        let s_scale = p.native(
            NativeStep {
                label: "scale_u".into(),
                reads: vec![avk, sigma],
                writes: vec![usc],
                run: Box::new(move |w: &mut World, ctx| {
                    let extra = w.ensure_host(avk, ctx.now()) + w.ensure_host(sigma, ctx.now());
                    let data = w.get(avk).clone();
                    w.set(usc, data);
                    Charge::WorkPlusSecs(
                        CpuWork::new(2.0 * (n * k) as f64, (n * k * 8 * 2) as f64),
                        extra,
                    )
                }),
            },
            &[s_avk, s_eig],
        );

        // Phase 4: approx = (U·diag(σ))·Vkᵀ = A·Vk·Vkᵀ.
        let _s_rec = p.native(
            NativeStep {
                label: "reconstruct".into(),
                reads: vec![usc, vkt],
                writes: vec![approx],
                run: Box::new(move |w: &mut World, ctx| {
                    let extra = w.ensure_host(usc, ctx.now()) + w.ensure_host(vkt, ctx.now());
                    let prod = petal_blas::gemm::lapack_gemm(w.get(usc), w.get(vkt));
                    w.set(approx, prod);
                    Charge::WorkPlusSecs(
                        CpuWork::new(2.0 * (n * n * k) as f64 / 4.0, (n * n * 8) as f64),
                        extra,
                    )
                }),
            },
            &[s_scale],
        );
        p.mark_output(approx);

        let target = self.target;
        let check = Box::new(move |w: &World| -> Result<(), String> {
            let got = w.get(approx);
            let denom = a_m.frobenius_norm().max(1e-300);
            let err = a_m.sub(got).frobenius_norm() / denom;
            if err <= target {
                Ok(())
            } else {
                Err(format!("relative error {err:.4} exceeds target {target}"))
            }
        });
        Instance { world, plan: p.build(), check }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;
    use petal_core::{Selector, Tunable};

    #[test]
    fn default_rank_meets_target_everywhere() {
        let b = Svd::new(48, 0.2);
        for m in MachineProfile::all() {
            let r = b.run_default(&m);
            assert!(r.is_ok(), "{}: {:?}", m.codename, r.err());
        }
    }

    #[test]
    fn rank_too_low_fails_the_accuracy_check() {
        let b = Svd::new(48, 0.02);
        let m = MachineProfile::desktop();
        let mut cfg = b.program(&m).default_config(&m);
        cfg.set_tunable("svd_rank", Tunable::new(1, 1, 48));
        let r = b.run_with_config(&m, &cfg);
        assert!(r.is_err(), "rank 1 cannot hit a 2% target");
    }

    #[test]
    fn higher_rank_costs_more_time() {
        let b = Svd::new(48, 0.9);
        let m = MachineProfile::desktop();
        let t = |rank: i64| {
            let mut cfg = b.program(&m).default_config(&m);
            cfg.set_tunable("svd_rank", Tunable::new(rank, 1, 48));
            b.run_with_config(&m, &cfg).unwrap().virtual_time_secs()
        };
        assert!(t(4) < t(40), "rank 40 must cost more than rank 4");
    }

    #[test]
    fn ata_phase_runs_on_gpu_and_split() {
        let b = Svd::new(48, 0.3);
        let m = MachineProfile::desktop();
        for (sel, ratio) in [(1, 8), (1, 4)] {
            let mut cfg = b.program(&m).default_config(&m);
            cfg.set_selector("ata", Selector::constant(sel, 2));
            cfg.set_tunable("ata.gpu_ratio", Tunable::new(ratio, 0, 8));
            let r = b.run_with_config(&m, &cfg);
            assert!(r.is_ok(), "ratio {ratio}: {:?}", r.err());
        }
    }
}

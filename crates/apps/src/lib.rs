//! # petal-apps — the seven paper benchmarks
//!
//! Each module reproduces one benchmark from §6 of *Portable Performance on
//! Heterogeneous Architectures*, expressed against the `petal-core` choice
//! API so the autotuner can search its algorithm/placement/mapping space:
//!
//! | Module | Benchmark | Choice space highlights |
//! |---|---|---|
//! | [`blackscholes`] | Black-Scholes | CPU/GPU placement, fractional 1/8 splits |
//! | [`poisson`] | Poisson2D SOR | per-phase backend choice (split vs. iterate) |
//! | [`convolution`] | SeparableConvolution | 2D vs. separable × local-memory mapping |
//! | [`sort`] | Sort | 7-algorithm recursive poly-algorithm + GPU bitonic |
//! | [`strassen`] | Strassen | recursive decompositions, LAPACK leaf, GPU matmul |
//! | [`svd`] | SVD (variable accuracy) | task-parallel CPU+GPU, nested matmul selectors |
//! | [`tridiagonal`] | Tridiagonal Solver | direct solve vs. GPU cyclic reduction |
//!
//! All inputs are deterministic (seeded), and every benchmark carries a
//! host-side reference implementation used by `Instance::check`.

pub mod blackscholes;
pub mod convolution;
pub mod poisson;
pub mod sort;
pub mod strassen;
pub mod svd;
pub mod tridiagonal;
pub mod workload;

use petal_core::executor::{ExecReport, Executor};
use petal_core::{Config, Error, Plan, Program, World};
use petal_gpu::profile::MachineProfile;

/// Post-run verification closure against the reference implementation.
/// `Send` so a whole instance can be built and verified on an
/// evaluation-farm worker thread.
pub type CheckFn = Box<dyn Fn(&World) -> Result<(), String> + Send>;

/// One runnable problem instance: the world holding inputs/outputs, the
/// schedule for the chosen configuration, and a correctness check to run
/// after execution.
pub struct Instance {
    /// Matrices (inputs allocated, outputs zeroed).
    pub world: World,
    /// The schedule for this configuration.
    pub plan: Plan,
    /// Post-run verification against the reference implementation.
    pub check: CheckFn,
}

impl std::fmt::Debug for Instance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instance").field("plan", &self.plan).finish_non_exhaustive()
    }
}

/// A tunable benchmark: everything the autotuner and the figure harnesses
/// need.
///
/// `Send + Sync` is part of the contract: benchmarks are plain problem
/// descriptions (sizes, seeds, accuracy targets) that the evaluation farm
/// shares by reference across its worker threads, each of which calls
/// [`Benchmark::instantiate`] to build an independent trial.
pub trait Benchmark: Send + Sync {
    /// Display name (matches the paper's benchmark tables).
    fn name(&self) -> &str;

    /// The input size fed to selectors.
    fn input_size(&self) -> u64;

    /// Choice-space metadata (selectors, tunables, kernel counts).
    fn program(&self, machine: &MachineProfile) -> Program;

    /// Build a world + plan for one configuration.
    fn instantiate(&self, machine: &MachineProfile, cfg: &Config) -> Instance;

    /// Convenience: build, execute on a fresh executor, verify, report.
    ///
    /// # Errors
    /// Execution failures, or a [`Error::Validation`] when the result does
    /// not match the reference implementation.
    fn run_with_config(&self, machine: &MachineProfile, cfg: &Config) -> Result<ExecReport, Error> {
        let Instance { mut world, plan, check } = self.instantiate(machine, cfg);
        let mut ex = Executor::new(machine);
        let report = ex.run(plan, &mut world)?;
        check(&world).map_err(Error::Validation)?;
        Ok(report)
    }

    /// A smaller (or larger) copy of this benchmark for the autotuner's
    /// exponentially growing input-size schedule (§5.2). `None` when the
    /// size is too small to be a valid instance.
    fn resized(&self, size: u64) -> Option<Box<dyn Benchmark>> {
        let _ = size;
        None
    }

    /// Convenience: run with the untuned default configuration.
    ///
    /// # Errors
    /// Same as [`Benchmark::run_with_config`].
    fn run_default(&self, machine: &MachineProfile) -> Result<ExecReport, Error> {
        let cfg = self.program(machine).default_config(machine);
        self.run_with_config(machine, &cfg)
    }
}

/// All seven benchmarks at the sizes used by the harness binaries
/// (reduced from the paper's sizes so functional execution stays fast; the
/// harness `--full` flag restores the paper's sizes).
#[must_use]
pub fn all_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(blackscholes::BlackScholes::new(100_000)),
        Box::new(poisson::Poisson2D::new(128, 8)),
        Box::new(convolution::SeparableConvolution::new(256, 7)),
        Box::new(sort::Sort::new(1 << 16)),
        Box::new(strassen::Strassen::new(256)),
        Box::new(svd::Svd::new(64, 0.15)),
        Box::new(tridiagonal::Tridiagonal::new(1 << 12)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_runs_with_defaults_on_every_machine() {
        // Including the iGPU/ManyCore extension profiles: default configs
        // must be valid on machines with a shared-memory device and on
        // machines with no OpenCL runtime at all.
        for b in all_benchmarks() {
            for m in MachineProfile::extended() {
                let r = b.run_default(&m);
                assert!(r.is_ok(), "{} on {}: {:?}", b.name(), m.codename, r.err());
            }
        }
    }
}

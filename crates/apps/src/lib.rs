//! # petal-apps — the seven paper benchmarks
//!
//! Each module reproduces one benchmark from §6 of *Portable Performance on
//! Heterogeneous Architectures*, expressed against the `petal-core` choice
//! API so the autotuner can search its algorithm/placement/mapping space:
//!
//! | Module | Benchmark | Choice space highlights |
//! |---|---|---|
//! | [`blackscholes`] | Black-Scholes | CPU/GPU placement, fractional 1/8 splits |
//! | [`poisson`] | Poisson2D SOR | per-phase backend choice (split vs. iterate) |
//! | [`convolution`] | SeparableConvolution | 2D vs. separable × local-memory mapping |
//! | [`sort`] | Sort | 7-algorithm recursive poly-algorithm + GPU bitonic |
//! | [`strassen`] | Strassen | recursive decompositions, LAPACK leaf, GPU matmul |
//! | [`svd`] | SVD (variable accuracy) | task-parallel CPU+GPU, nested matmul selectors |
//! | [`tridiagonal`] | Tridiagonal Solver | direct solve vs. GPU cyclic reduction |
//!
//! All inputs are deterministic (seeded), and every benchmark carries a
//! host-side reference implementation used by `Instance::check`.

pub mod blackscholes;
pub mod convolution;
pub mod poisson;
pub mod sort;
pub mod strassen;
pub mod svd;
pub mod tridiagonal;
pub mod workload;

use petal_core::executor::{ExecReport, Executor};
use petal_core::{Config, Error, Plan, Program, World};
use petal_gpu::profile::MachineProfile;

/// Post-run verification closure against the reference implementation.
/// `Send` so a whole instance can be built and verified on an
/// evaluation-farm worker thread.
pub type CheckFn = Box<dyn Fn(&World) -> Result<(), String> + Send>;

/// One runnable problem instance: the world holding inputs/outputs, the
/// schedule for the chosen configuration, and a correctness check to run
/// after execution.
pub struct Instance {
    /// Matrices (inputs allocated, outputs zeroed).
    pub world: World,
    /// The schedule for this configuration.
    pub plan: Plan,
    /// Post-run verification against the reference implementation.
    pub check: CheckFn,
}

impl std::fmt::Debug for Instance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instance").field("plan", &self.plan).finish_non_exhaustive()
    }
}

/// A tunable benchmark: everything the autotuner and the figure harnesses
/// need.
///
/// `Send + Sync` is part of the contract: benchmarks are plain problem
/// descriptions (sizes, seeds, accuracy targets) that the evaluation farm
/// shares by reference across its worker threads, each of which calls
/// [`Benchmark::instantiate`] to build an independent trial.
pub trait Benchmark: Send + Sync {
    /// Display name (matches the paper's benchmark tables).
    fn name(&self) -> &str;

    /// A machine-readable constructor spec: one line of `kind key=value …`
    /// that [`benchmark_from_spec`] parses back into an equivalent
    /// benchmark. This is how the process-sharded evaluation farm ships a
    /// benchmark identity to its `petal-shard` worker processes, so the
    /// round-trip contract is strict: `benchmark_from_spec(&b.spec())`
    /// must rebuild a benchmark with the same name, the same input size
    /// and bit-identical evaluation behaviour. Floating-point parameters
    /// are therefore encoded as exact IEEE-754 bit patterns (`0x…`).
    fn spec(&self) -> String;

    /// The input size fed to selectors.
    fn input_size(&self) -> u64;

    /// Choice-space metadata (selectors, tunables, kernel counts).
    fn program(&self, machine: &MachineProfile) -> Program;

    /// Build a world + plan for one configuration.
    fn instantiate(&self, machine: &MachineProfile, cfg: &Config) -> Instance;

    /// Convenience: build, execute on a fresh executor, verify, report.
    ///
    /// # Errors
    /// Execution failures, or a [`Error::Validation`] when the result does
    /// not match the reference implementation.
    fn run_with_config(&self, machine: &MachineProfile, cfg: &Config) -> Result<ExecReport, Error> {
        let Instance { mut world, plan, check } = self.instantiate(machine, cfg);
        let mut ex = Executor::new(machine);
        let report = ex.run(plan, &mut world)?;
        check(&world).map_err(Error::Validation)?;
        Ok(report)
    }

    /// A smaller (or larger) copy of this benchmark for the autotuner's
    /// exponentially growing input-size schedule (§5.2). `None` when the
    /// size is too small to be a valid instance.
    fn resized(&self, size: u64) -> Option<Box<dyn Benchmark>> {
        let _ = size;
        None
    }

    /// Config keys (selector or tunable names) consulted by *dynamic*
    /// control flow — closures inside `NativeStep`s that re-read the
    /// configuration at runtime, invisible to any static analysis of the
    /// lowered plan. The choice-space linter (`petal-verify`) must not
    /// flag these as dead just because varying them leaves the plan's
    /// structure unchanged. Default: none (every key's effect is visible
    /// in the plan).
    fn dynamic_config_keys(&self) -> Vec<String> {
        Vec::new()
    }

    /// Convenience: run with the untuned default configuration.
    ///
    /// # Errors
    /// Same as [`Benchmark::run_with_config`].
    fn run_default(&self, machine: &MachineProfile) -> Result<ExecReport, Error> {
        let cfg = self.program(machine).default_config(machine);
        self.run_with_config(machine, &cfg)
    }
}

/// Parse one `key=value` token of a [`Benchmark::spec`] line.
fn spec_field<'a>(tokens: &'a [&str], key: &str) -> Result<&'a str, String> {
    tokens
        .iter()
        .find_map(|t| t.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
        .ok_or_else(|| format!("spec is missing `{key}=`"))
}

fn spec_usize(tokens: &[&str], key: &str) -> Result<usize, String> {
    spec_field(tokens, key)?.parse().map_err(|_| format!("spec field `{key}` is not an integer"))
}

/// Decode an `0x…` IEEE-754 bit pattern written by a spec (exactness is
/// part of the round-trip contract; decimal text could drift).
fn spec_f64_bits(tokens: &[&str], key: &str) -> Result<f64, String> {
    spec_f64_parse(spec_field(tokens, key)?).map_err(|e| format!("spec field `{key}`: {e}"))
}

/// Encode an `f64` as its exact IEEE-754 bit pattern (`0x` + 16 hex
/// digits). The inverse of [`spec_f64_parse`]; shared by benchmark specs
/// and the shard wire format so the two "exact float" encodings can
/// never drift apart.
#[must_use]
pub fn spec_f64(value: f64) -> String {
    let mut out = String::with_capacity(18);
    spec_f64_into(value, &mut out);
    out
}

/// [`spec_f64`] appended to an existing buffer — the allocation-free form
/// the shard wire encoder uses on its per-job hot path.
pub fn spec_f64_into(value: f64, out: &mut String) {
    use std::fmt::Write as _;
    let _ = write!(out, "0x{:016x}", value.to_bits());
}

/// Decode an `f64` encoded by [`spec_f64`], bit-exactly (NaN payloads
/// included).
///
/// # Errors
/// When the text is not `0x` followed by a valid hex bit pattern.
pub fn spec_f64_parse(raw: &str) -> Result<f64, String> {
    let hex = raw.strip_prefix("0x").ok_or_else(|| format!("`{raw}` must be 0x…"))?;
    u64::from_str_radix(hex, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("`{raw}` is not a hex bit pattern"))
}

/// Rebuild a benchmark from a [`Benchmark::spec`] line.
///
/// This is the inverse of [`Benchmark::spec`] and the entry point the
/// `petal-shard` worker binary uses to reconstruct its benchmark from the
/// shard-protocol `INIT` message.
///
/// # Errors
/// Returns a human-readable message when the kind is unknown, a field is
/// missing or malformed, or the parameters would violate the benchmark's
/// constructor invariants (so a corrupt spec never panics a worker).
pub fn benchmark_from_spec(spec: &str) -> Result<Box<dyn Benchmark>, String> {
    let tokens: Vec<&str> = spec.split_whitespace().collect();
    let (&kind, params) = tokens.split_first().ok_or_else(|| "empty spec".to_owned())?;
    match kind {
        "blackscholes" => {
            let n = spec_usize(params, "n")?;
            (n >= 1).then(|| Box::new(blackscholes::BlackScholes::new(n)) as Box<dyn Benchmark>)
        }
        .ok_or_else(|| "blackscholes: n must be >= 1".to_owned()),
        "poisson2d" => {
            let (n, iters) = (spec_usize(params, "n")?, spec_usize(params, "iters")?);
            (n >= 4 && iters >= 1)
                .then(|| Box::new(poisson::Poisson2D::new(n, iters)) as Box<dyn Benchmark>)
                .ok_or_else(|| "poisson2d: need n >= 4 and iters >= 1".to_owned())
        }
        "convolution" => {
            let (n, k) = (spec_usize(params, "n")?, spec_usize(params, "k")?);
            (k % 2 == 1 && k >= 3 && n > 3 * k)
                .then(|| {
                    Box::new(convolution::SeparableConvolution::new(n, k)) as Box<dyn Benchmark>
                })
                .ok_or_else(|| "convolution: need odd k >= 3 and n > 3k".to_owned())
        }
        "sort" => {
            let n = spec_usize(params, "n")?;
            (n > 0)
                .then(|| Box::new(sort::Sort::new(n)) as Box<dyn Benchmark>)
                .ok_or_else(|| "sort: n must be > 0".to_owned())
        }
        "strassen" => {
            let n = spec_usize(params, "n")?;
            (n > 0)
                .then(|| Box::new(strassen::Strassen::new(n)) as Box<dyn Benchmark>)
                .ok_or_else(|| "strassen: n must be > 0".to_owned())
        }
        "svd" => {
            let (n, target) = (spec_usize(params, "n")?, spec_f64_bits(params, "target")?);
            (n >= 4 && target > 0.0 && target <= 1.0)
                .then(|| Box::new(svd::Svd::new(n, target)) as Box<dyn Benchmark>)
                .ok_or_else(|| "svd: need n >= 4 and target in (0, 1]".to_owned())
        }
        "tridiagonal" => {
            let n = spec_usize(params, "n")?;
            (n >= 2)
                .then(|| Box::new(tridiagonal::Tridiagonal::new(n)) as Box<dyn Benchmark>)
                .ok_or_else(|| "tridiagonal: n must be >= 2".to_owned())
        }
        other => Err(format!("unknown benchmark kind `{other}`")),
    }
}

/// All seven benchmarks at the sizes used by the harness binaries
/// (reduced from the paper's sizes so functional execution stays fast; the
/// harness `--full` flag restores the paper's sizes).
#[must_use]
pub fn all_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(blackscholes::BlackScholes::new(100_000)),
        Box::new(poisson::Poisson2D::new(128, 8)),
        Box::new(convolution::SeparableConvolution::new(256, 7)),
        Box::new(sort::Sort::new(1 << 16)),
        Box::new(strassen::Strassen::new(256)),
        Box::new(svd::Svd::new(64, 0.15)),
        Box::new(tridiagonal::Tridiagonal::new(1 << 12)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_the_factory() {
        for b in all_benchmarks() {
            let spec = b.spec();
            let rebuilt = benchmark_from_spec(&spec)
                .unwrap_or_else(|e| panic!("{}: spec `{spec}` did not parse: {e}", b.name()));
            assert_eq!(rebuilt.name(), b.name());
            assert_eq!(rebuilt.input_size(), b.input_size());
            assert_eq!(rebuilt.spec(), spec, "spec must be canonical");
        }
    }

    #[test]
    fn bad_specs_error_instead_of_panicking() {
        for bad in [
            "",
            "warp10 n=4",
            "sort",
            "sort n=zero",
            "sort n=0",
            "convolution n=16 k=4",
            "poisson2d n=128",
            "svd n=64 target=0.15",
            "svd n=64 target=0x0000000000000000",
        ] {
            assert!(benchmark_from_spec(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn svd_spec_preserves_the_exact_accuracy_target() {
        let b = svd::Svd::new(32, 0.1 + 0.2 - 0.25); // deliberately non-representable-looking
        let rebuilt = benchmark_from_spec(&b.spec()).expect("parses");
        assert_eq!(rebuilt.spec(), b.spec());
    }

    #[test]
    fn every_benchmark_runs_with_defaults_on_every_machine() {
        // Including the iGPU/ManyCore extension profiles: default configs
        // must be valid on machines with a shared-memory device and on
        // machines with no OpenCL runtime at all.
        for b in all_benchmarks() {
            for m in MachineProfile::extended() {
                let r = b.run_default(&m);
                assert!(r.is_ok(), "{} on {}: {:?}", b.name(), m.codename, r.err());
            }
        }
    }
}

//! The Black-Scholes benchmark (§6.2, Fig. 7a).
//!
//! Prices `n` European call options: every output element is an independent
//! closed-form evaluation over the spot price, strike and expiry arrays —
//! the ideal streaming kernel. The interesting choice is pure *placement*:
//! all on the GPU, all on the CPU, or — on machines where the two are close
//! in throughput (the paper's Laptop) — a concurrent fractional split
//! ("25% on CPU and 75% on GPU" in Fig. 6).

use crate::workload::random_vec;
use crate::Instance;
use petal_blas::Matrix;
use petal_core::plan::{placement_from_config, PlanBuilder, StencilStep};
use petal_core::program::ChoiceSite;
use petal_core::stencil::{AccessPattern, StencilInput, StencilRule};
use petal_core::{Config, Program, World};
use petal_gpu::profile::MachineProfile;
use std::sync::Arc;

/// Risk-free rate used by the workload.
pub const RATE: f64 = 0.02;
/// Volatility used by the workload.
pub const VOLATILITY: f64 = 0.30;

/// Arithmetic cost per option: exp/log/sqrt-heavy closed form.
const FLOPS_PER_OPTION: f64 = 220.0;

/// Standard normal CDF via the Abramowitz–Stegun polynomial (the classic
/// kernel used in GPU Black-Scholes samples).
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    let a1 = 0.319_381_530;
    let a2 = -0.356_563_782;
    let a3 = 1.781_477_937;
    let a4 = -1.821_255_978;
    let a5 = 1.330_274_429;
    let k = 1.0 / (1.0 + 0.231_641_9 * x.abs());
    let poly = k * (a1 + k * (a2 + k * (a3 + k * (a4 + k * a5))));
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let cdf = 1.0 - pdf * poly;
    if x >= 0.0 {
        cdf
    } else {
        1.0 - cdf
    }
}

/// Closed-form European call price.
#[must_use]
pub fn call_price(s: f64, k: f64, t: f64, r: f64, v: f64) -> f64 {
    let sqrt_t = t.sqrt();
    let d1 = ((s / k).ln() + (r + 0.5 * v * v) * t) / (v * sqrt_t);
    let d2 = d1 - v * sqrt_t;
    s * normal_cdf(d1) - k * (-r * t).exp() * normal_cdf(d2)
}

/// The Black-Scholes benchmark over `n` options.
#[derive(Debug, Clone)]
pub struct BlackScholes {
    n: usize,
}

impl BlackScholes {
    /// New instance with `n` options (the paper tests 500 000).
    #[must_use]
    pub fn new(n: usize) -> Self {
        BlackScholes { n: n.max(1) }
    }

    /// The data-parallel pricing rule: three `Point` inputs, one output.
    #[must_use]
    pub fn rule() -> Arc<StencilRule> {
        Arc::new(StencilRule {
            name: "black_scholes".into(),
            inputs: vec![
                StencilInput { index: 0, access: AccessPattern::Point },
                StencilInput { index: 1, access: AccessPattern::Point },
                StencilInput { index: 2, access: AccessPattern::Point },
            ],
            flops_per_output: FLOPS_PER_OPTION,
            body_c: "double s = IN0(x, y), k = IN1(x, y), t = IN2(x, y);\n\
                     double r = user_scalars[0], v = user_scalars[1];\n\
                     double sq = sqrt(t);\n\
                     double d1 = (log(s / k) + (r + 0.5 * v * v) * t) / (v * sq);\n\
                     double d2 = d1 - v * sq;\n\
                     result = s * petal_cnd(d1) - k * exp(-r * t) * petal_cnd(d2);"
                .into(),
            elem: Arc::new(|env, x, y| {
                let s = env.inputs[0].at(x, y);
                let k = env.inputs[1].at(x, y);
                let t = env.inputs[2].at(x, y);
                call_price(s, k, t, env.scalars[0], env.scalars[1])
            }),
            native_only_body: false,
        })
    }
}

impl crate::Benchmark for BlackScholes {
    fn name(&self) -> &str {
        "Black-Scholes"
    }

    fn spec(&self) -> String {
        format!("blackscholes n={}", self.n)
    }

    fn input_size(&self) -> u64 {
        self.n as u64
    }

    fn resized(&self, size: u64) -> Option<Box<dyn crate::Benchmark>> {
        (size >= 64)
            .then(|| Box::new(BlackScholes::new(size as usize)) as Box<dyn crate::Benchmark>)
    }

    fn program(&self, _machine: &MachineProfile) -> Program {
        let mut p = Program::new("blackscholes");
        p.add_site(ChoiceSite {
            name: "blackscholes".into(),
            num_algs: 1,
            opencl: true,
            // Point access: bounding box 1, so no scratchpad variant (§3.1).
            local_memory_variant: false,
            fractional: true,
        });
        p
    }

    fn instantiate(&self, machine: &MachineProfile, cfg: &Config) -> Instance {
        // Shape the logical option array as rows x cols so fractional
        // CPU/GPU splits can divide it by rows.
        let rows = 64.min(self.n);
        let cols = self.n.div_ceil(rows);
        let n = rows * cols;
        let mut world = World::new();
        let spot = world.alloc(Matrix::from_vec(rows, cols, random_vec(n, 5.0, 30.0, 11)));
        let strike = world.alloc(Matrix::from_vec(rows, cols, random_vec(n, 1.0, 100.0, 12)));
        let expiry = world.alloc(Matrix::from_vec(rows, cols, random_vec(n, 0.25, 10.0, 13)));
        let out = world.alloc(Matrix::zeros(rows, cols));

        let rule = Self::rule();
        let placement = placement_from_config(cfg, "blackscholes", n as u64, machine, &rule, rows);
        let mut p = PlanBuilder::new();
        p.stencil(
            StencilStep {
                rule,
                inputs: vec![spot, strike, expiry],
                output: out,
                out_dims: (cols, rows),
                user_scalars: vec![RATE, VOLATILITY],
                placement,
            },
            &[],
        );
        p.mark_output(out);

        let expected: Vec<f64> = {
            let s = random_vec(n, 5.0, 30.0, 11);
            let k = random_vec(n, 1.0, 100.0, 12);
            let t = random_vec(n, 0.25, 10.0, 13);
            (0..n).map(|i| call_price(s[i], k[i], t[i], RATE, VOLATILITY)).collect()
        };
        let check = Box::new(move |w: &World| -> Result<(), String> {
            let got = w.get(out).as_slice();
            for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
                if (g - e).abs() > 1e-9 * (1.0 + e.abs()) {
                    return Err(format!("option {i}: got {g}, want {e}"));
                }
            }
            Ok(())
        });
        Instance { world, plan: p.build(), check }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;
    use petal_core::{Selector, Tunable};

    #[test]
    fn cnd_matches_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn price_is_sane() {
        // Deep in-the-money call with zero-ish time value ≈ S - K·e^{-rT}.
        let p = call_price(100.0, 50.0, 1.0, 0.02, 0.2);
        assert!((p - (100.0 - 50.0 * (-0.02f64).exp())).abs() < 0.1, "{p}");
        // Price within no-arbitrage bounds.
        assert!(p < 100.0 && p > 0.0);
    }

    #[test]
    fn runs_on_cpu_gpu_and_split() {
        let b = BlackScholes::new(4096);
        let m = MachineProfile::laptop();
        let mut cfg = b.program(&m).default_config(&m);
        // CPU only.
        cfg.set_selector("blackscholes", Selector::constant(0, 2));
        let cpu = b.run_with_config(&m, &cfg).unwrap();
        // GPU only.
        cfg.set_selector("blackscholes", Selector::constant(1, 2));
        cfg.set_tunable("blackscholes.gpu_ratio", Tunable::new(8, 0, 8));
        let gpu = b.run_with_config(&m, &cfg).unwrap();
        // 75% GPU / 25% CPU split.
        cfg.set_tunable("blackscholes.gpu_ratio", Tunable::new(6, 0, 8));
        let split = b.run_with_config(&m, &cfg).unwrap();
        assert!(cpu.virtual_time_secs() > 0.0);
        assert!(gpu.virtual_time_secs() > 0.0);
        assert!(split.virtual_time_secs() > 0.0);
    }

    #[test]
    fn laptop_split_beats_both_pure_placements() {
        // The paper's Fig. 7(a) headline: on the Laptop a 25/75 CPU/GPU
        // division outperforms either processor alone.
        let b = BlackScholes::new(200_000);
        let m = MachineProfile::laptop();
        let mut cfg = b.program(&m).default_config(&m);
        cfg.set_selector("blackscholes", Selector::constant(1, 2));
        let time = |cfg: &Config| b.run_with_config(&m, cfg).unwrap().virtual_time_secs();
        cfg.set_tunable("blackscholes.gpu_ratio", Tunable::new(8, 0, 8));
        let gpu_only = time(&cfg);
        cfg.set_tunable("blackscholes.gpu_ratio", Tunable::new(0, 0, 8));
        let cpu_only = time(&cfg);
        cfg.set_tunable("blackscholes.gpu_ratio", Tunable::new(6, 0, 8));
        let split = time(&cfg);
        assert!(split < gpu_only, "split {split} must beat GPU-only {gpu_only}");
        assert!(split < cpu_only, "split {split} must beat CPU-only {cpu_only}");
    }

    #[test]
    fn desktop_prefers_pure_gpu() {
        let b = BlackScholes::new(200_000);
        let m = MachineProfile::desktop();
        let mut cfg = b.program(&m).default_config(&m);
        cfg.set_selector("blackscholes", Selector::constant(1, 2));
        let time = |cfg: &Config| b.run_with_config(&m, cfg).unwrap().virtual_time_secs();
        cfg.set_tunable("blackscholes.gpu_ratio", Tunable::new(8, 0, 8));
        let gpu_only = time(&cfg);
        cfg.set_tunable("blackscholes.gpu_ratio", Tunable::new(6, 0, 8));
        let split = time(&cfg);
        assert!(gpu_only < split, "desktop GPU-only {gpu_only} must beat the 6/8 split {split}");
    }
}

//! The Strassen benchmark (§6.2, Fig. 7e): dense matrix multiplication.
//!
//! "The choices include: transposing any combination of the inputs; four
//! different recursive decompositions, including Strassen's algorithm;
//! various blocking methods; naive matrix multiplication; and calling the
//! LAPACK external library." The selector is consulted at every recursive
//! call site, so tuned configurations are poly-algorithms like Fig. 6's
//! "8-way parallel recursive decomposition on CPU, call LAPACK when
//! < 682×682" (Server) vs. "directly call LAPACK" (Laptop) vs. "data
//! parallel on GPU" (Desktop).
//!
//! Selector values: 0 = LAPACK leaf, 1 = naive leaf, 2 = transposed leaf,
//! 3 = blocked leaf, 4 = 8-multiply recursive decomposition, 5 = Strassen's
//! 7-multiply decomposition; with OpenCL available, 6 = data-parallel GPU
//! kernel (with the `*.gpu_ratio` fractional split).

use crate::workload::random_matrix;
use crate::Instance;
use petal_blas::gemm::{
    blocked_gemm_into, gemm_flops, lapack_gemm, lapack_gemm_into, naive_gemm, transposed_gemm_into,
};
use petal_blas::Matrix;
use petal_core::plan::{NativeStep, Placement, PlanBuilder, StencilStep, StepId};
use petal_core::program::ChoiceSite;
use petal_core::stencil::{AccessPattern, StencilInput, StencilRule};
use petal_core::{Config, MatrixId, Program, World};
use petal_gpu::cost::CpuWork;
use petal_gpu::profile::MachineProfile;
use petal_rt::Charge;
use std::sync::Arc;

/// Recursion never descends below this size (leaves take over).
pub const MIN_RECURSE: usize = 32;

/// The data-parallel matmul rule: `C[y][x] = Σ_k A[y][k]·B[k][x]`.
#[must_use]
pub fn rule_matmul() -> Arc<StencilRule> {
    Arc::new(StencilRule {
        name: "matmul_dp".into(),
        inputs: vec![
            StencilInput { index: 0, access: AccessPattern::Row },
            StencilInput { index: 1, access: AccessPattern::Column },
        ],
        flops_per_output: 0.0, // set per instantiation (depends on K)
        body_c: "int kk = (int)user_scalars[0];\n\
                 for (int k = 0; k < kk; k++)\n\
                     result += IN0(k, y) * IN1(x, k);"
            .into(),
        elem: Arc::new(|env, x, y| {
            let kk = env.scalars[0] as usize;
            (0..kk).map(|k| env.inputs[0].at(k, y) * env.inputs[1].at(x, k)).sum()
        }),
        native_only_body: false,
    })
}

/// Emit a plan computing `c = a · b` (all `n × n`), consulting
/// `cfg.select(selector, n)` at every recursion level.
///
/// Returns the terminal steps of the multiplication.
#[allow(clippy::too_many_arguments)]
pub fn build_matmul(
    p: &mut PlanBuilder,
    world: &mut World,
    cfg: &Config,
    machine: &MachineProfile,
    selector: &str,
    a: MatrixId,
    b: MatrixId,
    c: MatrixId,
    n: usize,
    deps: &[StepId],
) -> Vec<StepId> {
    let mut choice = cfg.select(selector, n as u64);
    let gpu_index = 6;
    if choice == gpu_index && !machine.has_opencl() {
        choice = 0;
    }
    if n < MIN_RECURSE || n % 2 != 0 {
        choice = choice.min(3); // leaves only
    }
    match choice {
        4 => build_recursive_8(p, world, cfg, machine, selector, a, b, c, n, deps),
        5 => build_strassen_7(p, world, cfg, machine, selector, a, b, c, n, deps),
        6 => {
            let rule = rule_matmul();
            let mut rule_owned = (*rule).clone();
            rule_owned.flops_per_output = 2.0 * n as f64;
            let max_wg = machine.gpu.as_ref().map_or(1, |g| g.max_work_group) as i64;
            let local_size =
                cfg.tunable_or(&format!("{selector}.local_size"), 128).clamp(1, max_wg) as usize;
            let ratio = cfg.tunable_or(&format!("{selector}.gpu_ratio"), 8).clamp(0, 8) as u8;
            // The CPU-side portion chunks like every other stencil: through
            // `cpu_chunks`, so `sequential_cutoff` / `split_rows` actually
            // steer it (petal-verify: dead-tunable finding, fixed — the old
            // hardcoded `cores * 2` ignored both knobs).
            let chunks = petal_core::plan::cpu_chunks(cfg, machine, n);
            let placement = match ratio {
                0 => Placement::Cpu { chunks },
                8 => Placement::OpenCl { local_memory: false, local_size },
                e => Placement::Split {
                    gpu_eighths: e,
                    local_memory: false,
                    local_size,
                    cpu_chunks: chunks,
                },
            };
            let s = p.stencil(
                StencilStep {
                    rule: Arc::new(rule_owned),
                    inputs: vec![a, b],
                    output: c,
                    out_dims: (n, n),
                    user_scalars: vec![n as f64],
                    placement,
                },
                deps,
            );
            vec![s]
        }
        leaf => {
            let s = p.native(
                NativeStep {
                    label: format!("gemm_leaf{leaf}_{n}"),
                    reads: vec![a, b],
                    writes: vec![c],
                    run: Box::new(move |w: &mut World, ctx| {
                        let extra = w.ensure_host(a, ctx.now()) + w.ensure_host(b, ctx.now());
                        // The output was preallocated (all zeros) at plan
                        // build; the kernel writes it in place.
                        let mut out = w.take_matrix(c);
                        let work = leaf_gemm_into(&mut out, leaf, w.get(a), w.get(b));
                        w.restore_matrix(c, out);
                        Charge::WorkPlusSecs(work, extra)
                    }),
                },
                deps,
            );
            vec![s]
        }
    }
}

/// Execute one leaf kernel choice into the (all-zeros) output and return
/// its cost charge.
fn leaf_gemm_into(out: &mut Matrix, leaf: usize, a: &Matrix, b: &Matrix) -> CpuWork {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let flops = gemm_flops(m, k, n);
    match leaf {
        1 => {
            *out = naive_gemm(a, b);
            CpuWork::new(flops, flops * 4.0) // strided misses
        }
        2 => {
            transposed_gemm_into(out, a, b);
            CpuWork::new(flops, flops * 0.8)
        }
        3 => {
            blocked_gemm_into(out, a, b, 64);
            CpuWork::new(flops, flops * 0.35)
        }
        // LAPACK: vectorized (≈4-wide) and cache-blocked.
        _ => {
            lapack_gemm_into(out, a, b);
            CpuWork::new(flops / 4.0, flops * 0.3)
        }
    }
}

/// Quadrant helper: allocate the four `n/2` quadrants of a matrix.
fn alloc_quads(world: &mut World, h: usize) -> [MatrixId; 4] {
    [
        world.alloc(Matrix::zeros(h, h)),
        world.alloc(Matrix::zeros(h, h)),
        world.alloc(Matrix::zeros(h, h)),
        world.alloc(Matrix::zeros(h, h)),
    ]
}

/// Native step extracting the 2×2 quadrants of `src` into `dst`.
fn split_step(
    p: &mut PlanBuilder,
    src: MatrixId,
    dst: [MatrixId; 4],
    h: usize,
    deps: &[StepId],
) -> StepId {
    p.native(
        NativeStep {
            label: format!("split_{h}"),
            reads: vec![src],
            writes: dst.to_vec(),
            run: Box::new(move |w: &mut World, ctx| {
                let extra = w.ensure_host(src, ctx.now());
                let m = w.take_matrix(src);
                for (q, id) in dst.into_iter().enumerate() {
                    let (r0, c0) = (h * (q / 2), h * (q % 2));
                    // Row copies into the quadrant's existing buffer: no
                    // per-split allocation.
                    let d = w.get_mut(id);
                    for r in 0..h {
                        d.row_mut(r).copy_from_slice(&m.row(r0 + r)[c0..c0 + h]);
                    }
                }
                w.restore_matrix(src, m);
                Charge::WorkPlusSecs(CpuWork::new(0.0, (4 * h * h * 8 * 2) as f64), extra)
            }),
        },
        deps,
    )
}

/// 8-multiply recursive decomposition: the classic 2×2 block algorithm,
/// with all eight sub-multiplies as independent (stealable) chains.
#[allow(clippy::too_many_arguments)]
fn build_recursive_8(
    p: &mut PlanBuilder,
    world: &mut World,
    cfg: &Config,
    machine: &MachineProfile,
    selector: &str,
    a: MatrixId,
    b: MatrixId,
    c: MatrixId,
    n: usize,
    deps: &[StepId],
) -> Vec<StepId> {
    let h = n / 2;
    let aq = alloc_quads(world, h);
    let bq = alloc_quads(world, h);
    let sa = split_step(p, a, aq, h, deps);
    let sb = split_step(p, b, bq, h, deps);
    // c11 = a11 b11 + a12 b21 ; c12 = a11 b12 + a12 b22 ; etc.
    let pairs: [(usize, usize); 8] =
        [(0, 0), (1, 2), (0, 1), (1, 3), (2, 0), (3, 2), (2, 1), (3, 3)];
    let mut products = Vec::with_capacity(8);
    let mut terminals = Vec::new();
    for (ai, bi) in pairs {
        let t = world.alloc(Matrix::zeros(h, h));
        let term = build_matmul(p, world, cfg, machine, selector, aq[ai], bq[bi], t, h, &[sa, sb]);
        products.push(t);
        terminals.extend(term);
    }
    let combine = p.native(
        NativeStep {
            label: format!("combine8_{n}"),
            reads: products.clone(),
            writes: vec![c],
            run: Box::new(move |w: &mut World, ctx| {
                let mut extra = 0.0;
                for &t in &products {
                    extra += w.ensure_host(t, ctx.now());
                }
                let mut out = Matrix::zeros(n, n);
                for q in 0..4 {
                    // Sum the two products straight into the output block —
                    // the same `x + y` per element as the former
                    // `add`-then-`set_block` (bit-identical), without the
                    // intermediate allocation and copy.
                    let (r0, c0) = (h * (q / 2), h * (q % 2));
                    let (p1, p2) = (w.get(products[2 * q]), w.get(products[2 * q + 1]));
                    for r in 0..h {
                        let dst = &mut out.row_mut(r0 + r)[c0..c0 + h];
                        for ((d, &x), &y) in dst.iter_mut().zip(p1.row(r)).zip(p2.row(r)) {
                            *d = x + y;
                        }
                    }
                }
                w.set(c, out);
                Charge::WorkPlusSecs(CpuWork::new((n * n) as f64, (n * n * 8 * 3) as f64), extra)
            }),
        },
        &terminals,
    );
    vec![combine]
}

/// Strassen's 7-multiply decomposition.
#[allow(clippy::too_many_arguments)]
fn build_strassen_7(
    p: &mut PlanBuilder,
    world: &mut World,
    cfg: &Config,
    machine: &MachineProfile,
    selector: &str,
    a: MatrixId,
    b: MatrixId,
    c: MatrixId,
    n: usize,
    deps: &[StepId],
) -> Vec<StepId> {
    let h = n / 2;
    let aq = alloc_quads(world, h);
    let bq = alloc_quads(world, h);
    let sa = split_step(p, a, aq, h, deps);
    let sb = split_step(p, b, bq, h, deps);
    // Left/right operands of the seven products, as (+/-) quadrant sums:
    // M1=(A11+A22)(B11+B22), M2=(A21+A22)B11, M3=A11(B12-B22),
    // M4=A22(B21-B11), M5=(A11+A12)B22, M6=(A21-A11)(B11+B12),
    // M7=(A12-A22)(B21+B22).
    type Combo = (Vec<(usize, f64)>, bool); // (terms, from_a)
    let operands: [(Combo, Combo); 7] = [
        ((vec![(0, 1.0), (3, 1.0)], true), (vec![(0, 1.0), (3, 1.0)], false)),
        ((vec![(2, 1.0), (3, 1.0)], true), (vec![(0, 1.0)], false)),
        ((vec![(0, 1.0)], true), (vec![(1, 1.0), (3, -1.0)], false)),
        ((vec![(3, 1.0)], true), (vec![(2, 1.0), (0, -1.0)], false)),
        ((vec![(0, 1.0), (1, 1.0)], true), (vec![(3, 1.0)], false)),
        ((vec![(2, 1.0), (0, -1.0)], true), (vec![(0, 1.0), (1, 1.0)], false)),
        ((vec![(1, 1.0), (3, -1.0)], true), (vec![(2, 1.0), (3, 1.0)], false)),
    ];
    let mut m_ids = Vec::with_capacity(7);
    let mut terminals = Vec::new();
    for (left, right) in operands {
        let make_operand = |p: &mut PlanBuilder, world: &mut World, combo: &Combo| {
            let (terms, from_a) = combo;
            let quads = if *from_a { aq } else { bq };
            if terms.len() == 1 && (terms[0].1 - 1.0).abs() < f64::EPSILON {
                // A bare quadrant: no sum step needed.
                (quads[terms[0].0], None)
            } else {
                let dst = world.alloc(Matrix::zeros(h, h));
                let terms = terms.clone();
                let s = p.native(
                    NativeStep {
                        label: format!("strassen_sum_{h}"),
                        reads: terms.iter().map(|&(q, _)| quads[q]).collect(),
                        writes: vec![dst],
                        run: Box::new(move |w: &mut World, ctx| {
                            let mut extra = 0.0;
                            for &(q, _) in &terms {
                                extra += w.ensure_host(quads[q], ctx.now());
                            }
                            let mut acc = Matrix::zeros(h, h);
                            for &(q, sign) in &terms {
                                acc = acc.add(&w.get(quads[q]).scaled(sign));
                            }
                            w.set(dst, acc);
                            Charge::WorkPlusSecs(
                                CpuWork::new((h * h) as f64, (h * h * 8 * 3) as f64),
                                extra,
                            )
                        }),
                    },
                    &[sa, sb],
                );
                (dst, Some(s))
            }
        };
        let (l_id, l_step) = make_operand(p, world, &left);
        let (r_id, r_step) = make_operand(p, world, &right);
        let mut product_deps = vec![sa, sb];
        product_deps.extend(l_step);
        product_deps.extend(r_step);
        let t = world.alloc(Matrix::zeros(h, h));
        let term = build_matmul(p, world, cfg, machine, selector, l_id, r_id, t, h, &product_deps);
        m_ids.push(t);
        terminals.extend(term);
    }
    let combine = p.native(
        NativeStep {
            label: format!("strassen_combine_{n}"),
            reads: m_ids.clone(),
            writes: vec![c],
            run: Box::new(move |w: &mut World, ctx| {
                let mut extra = 0.0;
                for &t in &m_ids {
                    extra += w.ensure_host(t, ctx.now());
                }
                let m = |i: usize| w.get(m_ids[i]);
                let c11 = m(0).add(m(3)).sub(m(4)).add(m(6));
                let c12 = m(2).add(m(4));
                let c21 = m(1).add(m(3));
                let c22 = m(0).sub(m(1)).add(m(2)).add(m(5));
                let mut out = Matrix::zeros(n, n);
                out.set_block(0, 0, &c11);
                out.set_block(0, h, &c12);
                out.set_block(h, 0, &c21);
                out.set_block(h, h, &c22);
                w.set(c, out);
                Charge::WorkPlusSecs(
                    CpuWork::new(2.0 * (n * n) as f64, (n * n * 8 * 4) as f64),
                    extra,
                )
            }),
        },
        &terminals,
    );
    vec![combine]
}

/// The Strassen benchmark: `c = a · b` over `n × n` inputs.
#[derive(Debug, Clone)]
pub struct Strassen {
    n: usize,
}

impl Strassen {
    /// New instance (the paper uses n = 1024).
    ///
    /// # Panics
    /// Panics when `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "empty matrices");
        Strassen { n }
    }
}

impl crate::Benchmark for Strassen {
    fn name(&self) -> &str {
        "Strassen"
    }

    fn spec(&self) -> String {
        format!("strassen n={}", self.n)
    }

    fn input_size(&self) -> u64 {
        self.n as u64
    }

    fn resized(&self, size: u64) -> Option<Box<dyn crate::Benchmark>> {
        (size >= 8).then(|| Box::new(Strassen::new(size as usize)) as Box<dyn crate::Benchmark>)
    }

    fn program(&self, _machine: &MachineProfile) -> Program {
        let mut p = Program::new("strassen");
        p.add_site(ChoiceSite {
            name: "matmul".into(),
            // LAPACK, naive, transposed, blocked, 8-way, Strassen-7.
            num_algs: 6,
            opencl: true,
            // The hand-coded OpenCL baseline's local-memory accumulation is
            // deliberately not implemented (§6.2: "we have not implemented
            // a similar optimization").
            local_memory_variant: false,
            fractional: true,
        });
        p
    }

    fn instantiate(&self, machine: &MachineProfile, cfg: &Config) -> Instance {
        let n = self.n;
        let mut world = World::new();
        let a_m = random_matrix(n, n, -1.0, 1.0, 51);
        let b_m = random_matrix(n, n, -1.0, 1.0, 52);
        let a = world.alloc(a_m.clone());
        let b = world.alloc(b_m.clone());
        let c = world.alloc(Matrix::zeros(n, n));
        let mut p = PlanBuilder::new();
        build_matmul(&mut p, &mut world, cfg, machine, "matmul", a, b, c, n, &[]);
        p.mark_output(c);
        let expected = lapack_gemm(&a_m, &b_m);
        let check = Box::new(move |w: &World| -> Result<(), String> {
            let got = w.get(c);
            let tol = 1e-6 * expected.frobenius_norm().max(1.0);
            if got.approx_eq(&expected, tol) {
                Ok(())
            } else {
                Err(format!("max abs diff {}", got.max_abs_diff(&expected)))
            }
        });
        Instance { world, plan: p.build(), check }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;
    use petal_core::{Selector, Tunable};

    fn config_with(m: &MachineProfile, b: &Strassen, sel: Selector) -> Config {
        let mut cfg = b.program(m).default_config(m);
        cfg.set_selector("matmul", sel);
        cfg
    }

    #[test]
    fn every_choice_multiplies_correctly() {
        let b = Strassen::new(64);
        let m = MachineProfile::desktop();
        for alg in 0..7 {
            let cfg = config_with(&m, &b, Selector::constant(alg, 7));
            let r = b.run_with_config(&m, &cfg);
            assert!(r.is_ok(), "alg {alg}: {:?}", r.err());
        }
    }

    #[test]
    fn polyalgorithm_recursion_with_cutoff() {
        // 8-way above 32, LAPACK below: the Fig. 6 Server shape.
        let b = Strassen::new(128);
        let m = MachineProfile::server();
        let cfg = config_with(&m, &b, Selector::new(vec![33], vec![0, 4], 7));
        b.run_with_config(&m, &cfg).unwrap();
    }

    #[test]
    fn odd_sizes_fall_back_to_leaves() {
        let b = Strassen::new(63);
        let m = MachineProfile::laptop();
        let cfg = config_with(&m, &b, Selector::constant(5, 7));
        b.run_with_config(&m, &cfg).unwrap();
    }

    /// Fig. 7(e) shape: the GPU data-parallel choice wins on Desktop by a
    /// large factor; direct LAPACK wins on Laptop.
    #[test]
    fn gpu_wins_desktop_lapack_wins_laptop() {
        let b = Strassen::new(512);
        let time = |m: &MachineProfile, sel: Selector, ratio: i64| {
            let mut cfg = config_with(m, &b, sel);
            cfg.set_tunable("matmul.gpu_ratio", Tunable::new(ratio, 0, 8));
            b.run_with_config(m, &cfg).unwrap().virtual_time_secs()
        };
        let d = MachineProfile::desktop();
        let gpu_d = time(&d, Selector::constant(6, 7), 8);
        let lapack_d = time(&d, Selector::constant(0, 7), 8);
        assert!(gpu_d < lapack_d / 3.0, "desktop GPU {gpu_d} vs LAPACK {lapack_d}");
        let l = MachineProfile::laptop();
        let gpu_l = time(&l, Selector::constant(6, 7), 8);
        let lapack_l = time(&l, Selector::constant(0, 7), 8);
        assert!(lapack_l < gpu_l, "laptop LAPACK {lapack_l} vs GPU {gpu_l}");
    }

    #[test]
    fn strassen_recursion_beats_naive_leaf() {
        let b = Strassen::new(256);
        let m = MachineProfile::server();
        let naive = {
            let cfg = config_with(&m, &b, Selector::constant(1, 7));
            b.run_with_config(&m, &cfg).unwrap().virtual_time_secs()
        };
        let eight_way = {
            let cfg = config_with(&m, &b, Selector::new(vec![65], vec![0, 4], 7));
            b.run_with_config(&m, &cfg).unwrap().virtual_time_secs()
        };
        assert!(eight_way < naive, "8-way+LAPACK {eight_way} vs naive {naive}");
    }
}

//! The Sort benchmark (§6.2, Fig. 7d).
//!
//! "The benchmark includes 7 sorting algorithms: merge sort, parallel merge
//! sort, quick sort, insertion sort, selection sort, radix sort, and
//! bitonic sort ... The configuration defines a poly-algorithm that
//! combines these sort building blocks together into a hybrid sorting
//! algorithm." The `sort` selector is consulted at every recursive call
//! site with the *current region size*, so tuned configurations look like
//! Fig. 6's "2MS (PM) above 174762, then QS until 64294, then 4MS until
//! 341, then IS".
//!
//! Selector values: 0 = insertion, 1 = selection, 2 = quicksort,
//! 3 = radix, 4 = 2-way merge sort, 5 = 4-way merge sort, 6 = bitonic
//! (CPU); with OpenCL available, 7 = bitonic sort as a chain of OpenCL
//! kernels (the paper's hand-written *GPU-only Config* baseline). Merge
//! sorts switch to a two-task *parallel merge* (PM) above the
//! `merge_parallel_cutoff` tunable.

use crate::workload::random_vec;
use crate::Instance;
use petal_blas::Matrix;
use petal_core::plan::{NativeStep, Placement, PlanBuilder, StencilStep};
use petal_core::program::ChoiceSite;
use petal_core::stencil::{AccessPattern, StencilInput, StencilRule};
use petal_core::{Config, MatrixId, Program, World};
use petal_gpu::cost::CpuWork;
use petal_gpu::profile::MachineProfile;
use petal_rt::{Charge, CpuCtx};
use std::sync::Arc;

/// Everything a recursive sort task needs.
#[derive(Clone)]
struct SortParams {
    cfg: Arc<Config>,
    data: MatrixId,
    scratch: MatrixId,
    lo: usize,
    hi: usize,
}

/// The Sort benchmark over `n` doubles.
#[derive(Debug, Clone)]
pub struct Sort {
    n: usize,
}

impl Sort {
    /// New instance (the paper uses n = 2²⁰).
    ///
    /// # Panics
    /// Panics when `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "empty input");
        Sort { n }
    }

    /// One bitonic compare-exchange pass (`scalars = [j, k]`).
    fn rule_bitonic() -> Arc<StencilRule> {
        Arc::new(StencilRule {
            name: "bitonic_pass".into(),
            inputs: vec![StencilInput { index: 0, access: AccessPattern::Gather }],
            flops_per_output: 4.0,
            body_c: "int j = (int)user_scalars[0];\n\
                     int k = (int)user_scalars[1];\n\
                     int partner = x ^ j;\n\
                     double a = IN0(x, 0), b = IN0(partner, 0);\n\
                     int asc = ((x & k) == 0);\n\
                     int keep_small = (x < partner) == (asc != 0);\n\
                     result = keep_small ? fmin(a, b) : fmax(a, b);"
                .into(),
            elem: Arc::new(|env, x, _y| {
                let j = env.scalars[0] as usize;
                let k = env.scalars[1] as usize;
                let partner = x ^ j;
                let a = env.inputs[0].at(x, 0);
                let b = env.inputs[0].at(partner, 0);
                let asc = (x & k) == 0;
                let keep_small = (x < partner) == asc;
                if keep_small {
                    a.min(b)
                } else {
                    a.max(b)
                }
            }),
            native_only_body: false,
        })
    }
}

impl crate::Benchmark for Sort {
    fn name(&self) -> &str {
        "Sort"
    }

    fn spec(&self) -> String {
        format!("sort n={}", self.n)
    }

    fn input_size(&self) -> u64 {
        self.n as u64
    }

    fn resized(&self, size: u64) -> Option<Box<dyn crate::Benchmark>> {
        (size >= 16).then(|| Box::new(Sort::new(size as usize)) as Box<dyn crate::Benchmark>)
    }

    fn program(&self, _machine: &MachineProfile) -> Program {
        let mut p = Program::new("sort");
        p.add_site(ChoiceSite {
            name: "sort".into(),
            num_algs: 7,
            opencl: true,
            local_memory_variant: false,
            // The bitonic chain always runs whole stages on the device; no
            // fractional CPU/GPU split exists, so emitting `sort.gpu_ratio`
            // would be a dead tunable (petal-verify finding, fixed).
            fractional: false,
        });
        p.add_tunable("merge_parallel_cutoff", 1 << 15, 16, 1 << 24);
        p
    }

    fn dynamic_config_keys(&self) -> Vec<String> {
        // The CPU path is one opaque native step whose closure re-reads the
        // `sort` selector and the merge cutoff at every recursion level;
        // varying them changes behaviour without changing plan structure.
        vec!["sort".into(), "merge_parallel_cutoff".into()]
    }

    fn instantiate(&self, machine: &MachineProfile, cfg: &Config) -> Instance {
        let n = self.n;
        let values = random_vec(n, -1e6, 1e6, 71);
        let mut world = World::new();
        let data = world.alloc(Matrix::from_vec(1, n, values.clone()));
        let mut p = PlanBuilder::new();

        let top_choice = cfg.select("sort", n as u64);
        if top_choice == 7 && machine.has_opencl() {
            build_gpu_bitonic(&mut p, &mut world, machine, cfg, data, n);
        } else {
            let scratch = world.alloc(Matrix::zeros(1, n));
            let params = SortParams { cfg: Arc::new(cfg.clone()), data, scratch, lo: 0, hi: n };
            p.native(
                NativeStep {
                    label: "sort_root".into(),
                    reads: vec![data],
                    writes: vec![data],
                    run: Box::new(move |w: &mut World, ctx| sort_step(w, ctx, &params)),
                },
                &[],
            );
        }
        p.mark_output(data);

        let mut expected = values;
        expected.sort_by(f64::total_cmp);
        let check = Box::new(move |w: &World| -> Result<(), String> {
            let got = w.get(data).as_slice();
            if got.len() != expected.len() {
                return Err("length changed".into());
            }
            for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
                if g != e {
                    return Err(format!("index {i}: got {g}, want {e}"));
                }
            }
            Ok(())
        });
        Instance { world, plan: p.build(), check }
    }
}

// ---------------------------------------------------------------------------
// Recursive CPU poly-algorithm
// ---------------------------------------------------------------------------

/// One sort task: consult the selector for this region size, run a leaf in
/// place or spawn children plus a continuation (the Cilk-style pattern the
/// runtime's task model exists for).
fn sort_step(w: &mut World, ctx: &mut CpuCtx<World>, params: &SortParams) -> Charge {
    let SortParams { cfg, data, scratch: _, lo, hi } = params.clone();
    let m = hi - lo;
    if m <= 1 {
        return Charge::Work(CpuWork::new(1.0, 16.0));
    }
    // GPU bitonic (7) is only available at the top level; recursive call
    // sites degrade it to the CPU bitonic.
    let choice = cfg.select("sort", m as u64).min(6);
    match choice {
        1 => {
            let slice = region_mut(w, data, lo, hi);
            selection_sort(slice);
            Charge::Work(CpuWork::new(0.6 * (m * m) as f64, (m * 8) as f64))
        }
        2 if m >= 8 => {
            let slice = region_mut(w, data, lo, hi);
            let split = lo + partition(slice);
            let left = SortParams { lo, hi: split, ..params.clone() };
            let right = SortParams { lo: split + 1, hi, ..params.clone() };
            let c1 = ctx.spawn_cpu(move |w, ctx| sort_step(w, ctx, &left));
            let c2 = ctx.spawn_cpu(move |w, ctx| sort_step(w, ctx, &right));
            let join = ctx.spawn_cpu(|_, _| Charge::Work(CpuWork::new(1.0, 0.0)));
            ctx.depend(join, c1);
            ctx.depend(join, c2);
            ctx.set_continuation(join);
            Charge::Work(CpuWork::new(3.0 * m as f64, (m * 8) as f64))
        }
        3 => {
            let slice = region_mut(w, data, lo, hi);
            radix_sort(slice);
            Charge::Work(CpuWork::new(18.0 * m as f64, (m * 8 * 10) as f64))
        }
        4 | 5 if m >= 8 => {
            let ways = if choice == 4 { 2 } else { 4 };
            let mut children = Vec::with_capacity(ways);
            let mut bounds = Vec::with_capacity(ways + 1);
            for i in 0..=ways {
                bounds.push(lo + m * i / ways);
            }
            for i in 0..ways {
                let child = SortParams { lo: bounds[i], hi: bounds[i + 1], ..params.clone() };
                children.push(ctx.spawn_cpu(move |w, ctx| sort_step(w, ctx, &child)));
            }
            let merge_params = params.clone();
            let merge = ctx.spawn_cpu(move |w, ctx| merge_step(w, ctx, &merge_params, ways));
            for c in children {
                ctx.depend(merge, c);
            }
            ctx.set_continuation(merge);
            Charge::Work(CpuWork::new(2.0 * m as f64, 64.0))
        }
        6 => {
            let slice = region_mut(w, data, lo, hi);
            bitonic_sort_cpu(slice);
            let logn = (m as f64).log2().ceil().max(1.0);
            Charge::Work(CpuWork::new(2.0 * m as f64 * logn * logn, (m * 16) as f64))
        }
        _ => {
            // Insertion sort (and the base case for tiny quick/merge regions).
            let slice = region_mut(w, data, lo, hi);
            insertion_sort(slice);
            Charge::Work(CpuWork::new(0.3 * (m * m) as f64, (m * 8) as f64))
        }
    }
}

/// Merge `ways` sorted runs of `[lo, hi)`. Above the parallel-merge cutoff
/// a 2-way merge splits into two co-ranked half-merges (the paper's "PM").
fn merge_step(w: &mut World, ctx: &mut CpuCtx<World>, params: &SortParams, ways: usize) -> Charge {
    let SortParams { cfg, data, scratch, lo, hi } = params.clone();
    let m = hi - lo;
    let pm_cutoff = cfg.tunable_or("merge_parallel_cutoff", 1 << 15).max(16) as usize;
    if ways == 2 && m >= pm_cutoff {
        // Parallel merge: split the output range at its midpoint via
        // co-ranking, merge the two output halves as independent tasks.
        let mid = lo + m / 2;
        let p1 = params.clone();
        let t1 = ctx.spawn_cpu(move |w, _| half_merge(w, &p1, mid, true));
        let p2 = params.clone();
        let t2 = ctx.spawn_cpu(move |w, _| half_merge(w, &p2, mid, false));
        let copyback = ctx.spawn_cpu(move |w, _| {
            let merged = w.get(scratch).as_slice()[lo..hi].to_vec();
            region_mut(w, data, lo, hi).copy_from_slice(&merged);
            Charge::Work(CpuWork::new(m as f64, (m * 16) as f64))
        });
        ctx.depend(copyback, t1);
        ctx.depend(copyback, t2);
        ctx.set_continuation(copyback);
        return Charge::Work(CpuWork::new(64.0, 64.0));
    }
    // Sequential k-way merge through the scratch buffer.
    let mut bounds = Vec::with_capacity(ways + 1);
    for i in 0..=ways {
        bounds.push(lo + m * i / ways);
    }
    let runs: Vec<Vec<f64>> =
        bounds.windows(2).map(|wd| w.get(data).as_slice()[wd[0]..wd[1]].to_vec()).collect();
    let mut cursors = vec![0usize; ways];
    let out = region_mut(w, data, lo, hi);
    for slot in out.iter_mut() {
        let mut best: Option<(usize, f64)> = None;
        for (r, run) in runs.iter().enumerate() {
            if cursors[r] < run.len() {
                let v = run[cursors[r]];
                if best.map_or(true, |(_, bv)| v < bv) {
                    best = Some((r, v));
                }
            }
        }
        let (r, v) = best.expect("total length preserved");
        cursors[r] += 1;
        *slot = v;
    }
    Charge::Work(CpuWork::new((ways * m) as f64, (m * 8 * 3) as f64))
}

/// Merge one half of the output range `[lo, hi)` into the scratch buffer.
fn half_merge(w: &mut World, params: &SortParams, mid_src: usize, lower: bool) -> Charge {
    let SortParams { data, scratch, lo, hi, .. } = params.clone();
    let m = hi - lo;
    let a: Vec<f64> = w.get(data).as_slice()[lo..mid_src].to_vec();
    let b: Vec<f64> = w.get(data).as_slice()[mid_src..hi].to_vec();
    let out_mid = m / 2;
    let (i0, j0, take) = if lower {
        let (i, j) = co_rank(out_mid, &a, &b);
        // Lower half merges the first `out_mid` outputs starting from (0,0)
        // — but computing the co-rank here validates the split.
        debug_assert_eq!(i + j, out_mid);
        (0, 0, out_mid)
    } else {
        let (i, j) = co_rank(out_mid, &a, &b);
        (i, j, m - out_mid)
    };
    let mut i = i0;
    let mut j = j0;
    let offset = if lower { 0 } else { out_mid };
    let out = region_mut(w, scratch, lo, hi);
    for t in 0..take {
        let v = if i < a.len() && (j >= b.len() || a[i] <= b[j]) {
            i += 1;
            a[i - 1]
        } else {
            j += 1;
            b[j - 1]
        };
        out[offset + t] = v;
    }
    Charge::Work(CpuWork::new(take as f64 * 2.0, (take * 24) as f64))
}

/// Co-ranking: find `(i, j)` with `i + j = k` splitting the merge of `a`
/// and `b` at output position `k`.
fn co_rank(k: usize, a: &[f64], b: &[f64]) -> (usize, usize) {
    let mut i = k.min(a.len());
    let mut j = k - i;
    let mut i_low = k.saturating_sub(b.len());
    loop {
        if i > 0 && j < b.len() && a[i - 1] > b[j] {
            let delta = (i - i_low).div_ceil(2);
            i -= delta;
            j += delta;
        } else if j > 0 && i < a.len() && b[j - 1] > a[i] {
            let delta = (k.min(a.len()) - i).div_ceil(2).max(1);
            i_low = i;
            i += delta.min(k.min(a.len()) - i);
            j = k - i;
        } else {
            return (i, j);
        }
    }
}

/// Mutable view of `data[lo..hi]`.
fn region_mut(w: &mut World, id: MatrixId, lo: usize, hi: usize) -> &mut [f64] {
    &mut w.get_mut(id).as_mut_slice()[lo..hi]
}

fn insertion_sort(a: &mut [f64]) {
    for i in 1..a.len() {
        let v = a[i];
        let mut j = i;
        while j > 0 && a[j - 1] > v {
            a[j] = a[j - 1];
            j -= 1;
        }
        a[j] = v;
    }
}

fn selection_sort(a: &mut [f64]) {
    for i in 0..a.len() {
        let mut min = i;
        for j in i + 1..a.len() {
            if a[j] < a[min] {
                min = j;
            }
        }
        a.swap(i, min);
    }
}

/// Lomuto partition with median-of-three pivot; returns the pivot index.
fn partition(a: &mut [f64]) -> usize {
    let n = a.len();
    let mid = n / 2;
    // Median-of-three to the end.
    if a[0] > a[mid] {
        a.swap(0, mid);
    }
    if a[0] > a[n - 1] {
        a.swap(0, n - 1);
    }
    if a[mid] > a[n - 1] {
        a.swap(mid, n - 1);
    }
    a.swap(mid, n - 1);
    let pivot = a[n - 1];
    let mut store = 0;
    for i in 0..n - 1 {
        if a[i] < pivot {
            a.swap(i, store);
            store += 1;
        }
    }
    a.swap(store, n - 1);
    store
}

/// LSD radix sort on the order-preserving `u64` image of `f64`.
fn radix_sort(a: &mut [f64]) {
    fn key(x: f64) -> u64 {
        let bits = x.to_bits();
        if bits >> 63 == 1 {
            !bits
        } else {
            bits ^ (1 << 63)
        }
    }
    let mut keys: Vec<(u64, f64)> = a.iter().map(|&x| (key(x), x)).collect();
    let mut buf = vec![(0u64, 0.0f64); keys.len()];
    for pass in 0..8 {
        let shift = pass * 8;
        let mut counts = [0usize; 256];
        for &(k, _) in &keys {
            counts[((k >> shift) & 0xff) as usize] += 1;
        }
        let mut pos = [0usize; 256];
        let mut acc = 0;
        for (b, c) in counts.iter().enumerate() {
            pos[b] = acc;
            acc += c;
        }
        for &(k, v) in &keys {
            let b = ((k >> shift) & 0xff) as usize;
            buf[pos[b]] = (k, v);
            pos[b] += 1;
        }
        std::mem::swap(&mut keys, &mut buf);
    }
    for (slot, (_, v)) in a.iter_mut().zip(keys) {
        *slot = v;
    }
}

/// In-place sequential bitonic sort (pads internally to a power of two).
fn bitonic_sort_cpu(a: &mut [f64]) {
    let n = a.len().next_power_of_two();
    let mut v = Vec::with_capacity(n);
    v.extend_from_slice(a);
    v.resize(n, f64::INFINITY);
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j >= 1 {
            for x in 0..n {
                let partner = x ^ j;
                if partner > x {
                    let asc = (x & k) == 0;
                    if (v[x] > v[partner]) == asc {
                        v.swap(x, partner);
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
    a.copy_from_slice(&v[..a.len()]);
}

// ---------------------------------------------------------------------------
// GPU bitonic chain
// ---------------------------------------------------------------------------

/// Build the OpenCL bitonic plan: pad to a power of two, one kernel per
/// `(k, j)` pass ping-ponging two buffers, unpad at the end.
fn build_gpu_bitonic(
    p: &mut PlanBuilder,
    world: &mut World,
    machine: &MachineProfile,
    cfg: &Config,
    data: MatrixId,
    n: usize,
) {
    let n_pad = n.next_power_of_two().max(2);
    let mut bufs = [world.alloc(Matrix::zeros(1, n_pad)), world.alloc(Matrix::zeros(1, n_pad))];
    let pad_step = p.native(
        NativeStep {
            label: "bitonic_pad".into(),
            reads: vec![data],
            writes: vec![bufs[0]],
            run: Box::new(move |w: &mut World, _| {
                let mut v = w.get(data).as_slice().to_vec();
                v.resize(n_pad, f64::INFINITY);
                w.set(bufs[0], Matrix::from_vec(1, n_pad, v));
                Charge::Work(CpuWork::new(0.0, (n_pad * 16) as f64))
            }),
        },
        &[],
    );
    let rule = Sort::rule_bitonic();
    let max_wg = machine.gpu.as_ref().map_or(1, |g| g.max_work_group) as i64;
    let local_size = cfg.tunable_or("sort.local_size", 256).clamp(1, max_wg) as usize;
    let mut deps = vec![pad_step];
    let mut k = 2;
    while k <= n_pad {
        let mut j = k / 2;
        while j >= 1 {
            let s = p.stencil(
                StencilStep {
                    rule: Arc::clone(&rule),
                    inputs: vec![bufs[0]],
                    output: bufs[1],
                    out_dims: (n_pad, 1),
                    user_scalars: vec![j as f64, k as f64],
                    placement: Placement::OpenCl { local_memory: false, local_size },
                },
                &deps,
            );
            bufs.swap(0, 1);
            deps = vec![s];
            j /= 2;
        }
        k *= 2;
    }
    p.native(
        NativeStep {
            label: "bitonic_unpad".into(),
            reads: vec![bufs[0]],
            writes: vec![data],
            run: Box::new(move |w: &mut World, ctx| {
                let extra = w.ensure_host(bufs[0], ctx.now());
                let v = w.get(bufs[0]).as_slice()[..n].to_vec();
                w.set(data, Matrix::from_vec(1, n, v));
                Charge::WorkPlusSecs(CpuWork::new(0.0, (n * 16) as f64), extra)
            }),
        },
        &deps,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;
    use petal_core::{Selector, Tunable};

    #[test]
    fn primitive_sorts_agree_with_std() {
        let mut reference = random_vec(500, -100.0, 100.0, 3);
        let original = reference.clone();
        reference.sort_by(f64::total_cmp);
        for f in [insertion_sort, selection_sort, radix_sort, bitonic_sort_cpu] {
            let mut v = original.clone();
            f(&mut v);
            assert_eq!(v, reference);
        }
    }

    #[test]
    fn partition_separates_around_pivot() {
        let mut v = random_vec(101, -10.0, 10.0, 9);
        let p = partition(&mut v);
        for (i, x) in v.iter().enumerate() {
            if i < p {
                assert!(*x <= v[p]);
            } else {
                assert!(*x >= v[p]);
            }
        }
    }

    #[test]
    fn co_rank_splits_are_consistent() {
        let mut a = random_vec(40, 0.0, 1.0, 1);
        let mut b = random_vec(25, 0.0, 1.0, 2);
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        for k in [0, 1, 10, 32, 65] {
            let (i, j) = co_rank(k, &a, &b);
            assert_eq!(i + j, k);
            // Every element in the prefix is ≤ every element in the suffix.
            let prefix_max =
                a[..i].iter().chain(b[..j].iter()).copied().fold(f64::NEG_INFINITY, f64::max);
            let suffix_min =
                a[i..].iter().chain(b[j..].iter()).copied().fold(f64::INFINITY, f64::min);
            assert!(prefix_max <= suffix_min, "k={k}: {prefix_max} > {suffix_min}");
        }
    }

    #[test]
    fn every_algorithm_choice_sorts() {
        let b = Sort::new(5000);
        let m = MachineProfile::desktop();
        for alg in 0..8 {
            let mut cfg = b.program(&m).default_config(&m);
            cfg.set_selector("sort", Selector::constant(alg, 8));
            let r = b.run_with_config(&m, &cfg);
            assert!(r.is_ok(), "alg {alg}: {:?}", r.err());
        }
    }

    #[test]
    fn paper_style_polyalgorithm_sorts_and_uses_cutoffs() {
        // 4MS above 7622, 2MS until 2730, insertion below (the Server
        // configuration in Fig. 6).
        let b = Sort::new(60_000);
        let m = MachineProfile::server();
        let mut cfg = b.program(&m).default_config(&m);
        cfg.set_selector("sort", Selector::new(vec![2730, 7622], vec![0, 4, 5], 8));
        b.run_with_config(&m, &cfg).unwrap();
    }

    #[test]
    fn parallel_merge_cutoff_changes_nothing_functionally() {
        let b = Sort::new(40_000);
        let m = MachineProfile::desktop();
        for cutoff in [16, 1 << 20] {
            let mut cfg = b.program(&m).default_config(&m);
            cfg.set_selector("sort", Selector::new(vec![256], vec![0, 4], 8));
            cfg.set_tunable("merge_parallel_cutoff", Tunable::new(cutoff, 16, 1 << 24));
            b.run_with_config(&m, &cfg).unwrap();
        }
    }

    /// Fig. 7(d) shape: a poly-algorithm on the CPU beats the GPU bitonic
    /// configuration on every machine.
    #[test]
    fn cpu_polyalgorithm_beats_gpu_bitonic() {
        let b = Sort::new(1 << 16);
        for m in MachineProfile::all() {
            let mut cfg = b.program(&m).default_config(&m);
            cfg.set_selector("sort", Selector::new(vec![512], vec![0, 4], 8));
            let cpu = b.run_with_config(&m, &cfg).unwrap().virtual_time_secs();
            if !m.has_physical_gpu() {
                continue;
            }
            cfg.set_selector("sort", Selector::constant(7, 8));
            let gpu = b.run_with_config(&m, &cfg).unwrap().virtual_time_secs();
            assert!(cpu < gpu, "{}: CPU poly {cpu} vs GPU bitonic {gpu}", m.codename);
        }
    }
}

//! Warm-start acceptance tests — the ISSUE's "warm_start" satellite:
//!
//! * **Never worse.** Warm-starting from an exact-match stored config
//!   (e.g. the previous tune of the *same* machine) yields a final cost
//!   equal to or better than that config's — the verbatim donor is
//!   always the first finalist, so a perfect hit is zero-regression.
//! * **Determinism.** A warm-started search is bit-identical at
//!   `farm.threads ∈ {1, 8}` and `shards ∈ {0, 2}` (the same contract
//!   `determinism.rs` proves for cold searches): registry reads happen
//!   before dispatch and warm candidates travel the same
//!   submission-order merge as any other candidate.
//! * **Repair accounting.** With a deliberately bad donor the tuner
//!   records the generation at which the population first beat it
//!   (`repair_generations`), and `round_secs` mirrors `round_best` so
//!   `parity_point` can price the repair in virtual seconds.

use petal_apps::blackscholes::BlackScholes;
use petal_apps::convolution::SeparableConvolution;
use petal_apps::Benchmark;
use petal_farm::shard::resolve_shard_bin;
use petal_farm::FarmSettings;
use petal_gpu::profile::MachineProfile;
use petal_tuner::{Autotuner, Tuned, TunerSettings, WarmStart};

fn settings(seed: u64) -> TunerSettings {
    TunerSettings { seed, trials_per_round: 12, population: 4, ..TunerSettings::smoke() }
}

fn tune(bench: &dyn Benchmark, machine: &MachineProfile, s: TunerSettings) -> Tuned {
    Autotuner::new(bench, machine, s).run()
}

#[test]
fn warm_start_from_an_exact_hit_is_never_worse() {
    let bench = BlackScholes::new(60_000);
    let machine = MachineProfile::desktop();
    let cold = tune(&bench, &machine, settings(0x11));

    // Re-tune the same machine seeded with its own stored config — the
    // registry's exact-hit path. Different seed, so the search itself
    // explores differently; the guarantee must come from the verbatim
    // donor, not from luck.
    for seed in [0x11, 0x22, 0x33] {
        let warm = tune(
            &bench,
            &machine,
            TunerSettings {
                warm_start: Some(WarmStart {
                    config: cold.config.clone(),
                    source: "registry:exact:Desktop".to_owned(),
                }),
                ..settings(seed)
            },
        );
        assert!(
            warm.time_secs <= cold.time_secs,
            "seed {seed:#x}: warm {} regressed past its donor {}",
            warm.time_secs,
            cold.time_secs
        );
        assert_eq!(warm.stats.warm_source.as_deref(), Some("registry:exact:Desktop"));
    }
}

#[test]
fn warm_start_is_bit_identical_across_threads_and_shards() {
    let bench = SeparableConvolution::new(96, 5);
    let machine = MachineProfile::laptop();
    // Donor: a quick cold tune of another machine — the migration case.
    let donor = tune(&bench, &MachineProfile::desktop(), settings(0x77));
    let warm_settings = |farm: FarmSettings| TunerSettings {
        warm_start: Some(WarmStart {
            config: donor.config.clone(),
            source: "registry:family:Desktop".to_owned(),
        }),
        farm,
        ..settings(0x5eed)
    };

    let reference = tune(&bench, &machine, warm_settings(FarmSettings::sequential()));
    assert_eq!(reference.stats.warm_source.as_deref(), Some("registry:family:Desktop"));

    // In-process thread counts.
    for threads in [1, 8] {
        let farm = FarmSettings { threads, ..FarmSettings::sequential() };
        let got = tune(&bench, &machine, warm_settings(farm));
        assert_eq!(got.config, reference.config, "config diverged at {threads} threads");
        assert_eq!(got.time_secs, reference.time_secs);
        assert_eq!(got.stats.tuning_secs, reference.stats.tuning_secs);
        assert_eq!(got.stats.round_best, reference.stats.round_best);
        assert_eq!(got.stats.round_secs, reference.stats.round_secs);
        assert_eq!(got.stats.repair_generations, reference.stats.repair_generations);
    }

    // Worker processes (0 = in-process covered above; 2 = sharded). The
    // worker binary is built by the workspace test build; skip loudly if
    // this test binary somehow runs without it.
    let Ok(shard_bin) = resolve_shard_bin(None) else {
        eprintln!("SKIP: petal-shard binary not found; shard leg not exercised");
        return;
    };
    let farm = FarmSettings { shards: 2, shard_bin: Some(shard_bin), ..FarmSettings::sequential() };
    let got = tune(&bench, &machine, warm_settings(farm));
    assert_eq!(got.config, reference.config, "config diverged at 2 shards");
    assert_eq!(got.time_secs, reference.time_secs);
    assert_eq!(got.stats.tuning_secs, reference.stats.tuning_secs);
    assert_eq!(got.stats.round_best, reference.stats.round_best);
    assert_eq!(got.stats.round_secs, reference.stats.round_secs);
    assert_eq!(got.stats.repair_generations, reference.stats.repair_generations);
    assert_eq!(got.stats.shards, 2);
}

#[test]
fn repair_accounting_tracks_a_bad_donor() {
    // The default config is far from the Desktop optimum (the cold-tune
    // unit test proves a >30% win), so seeding with it must be repaired:
    // some generation's best strictly beats the donor.
    let bench = BlackScholes::new(100_000);
    let machine = MachineProfile::desktop();
    let donor = bench.program(&machine).default_config(&machine);
    let warm = tune(
        &bench,
        &machine,
        TunerSettings {
            warm_start: Some(WarmStart { config: donor, source: "registry:fallback".to_owned() }),
            ..settings(0x9)
        },
    );
    let gen = warm.stats.repair_generations.expect("bad donor must be beaten");
    assert!(gen >= 1);

    // The repair curve is well-formed: round_secs mirrors round_best,
    // best is non-increasing within a round, cumulative secs
    // non-decreasing globally.
    assert_eq!(warm.stats.round_best.len(), warm.stats.round_secs.len());
    let mut last_secs = 0.0;
    for (best, secs) in warm.stats.round_best.iter().zip(&warm.stats.round_secs) {
        assert_eq!(best.len(), secs.len());
        for w in best.windows(2) {
            assert!(w[1] <= w[0], "best must be monotone within a round: {best:?}");
        }
        for &s in secs {
            assert!(s >= last_secs, "cumulative secs must not decrease");
            last_secs = s;
        }
    }

    // parity_point prices the donor's own cost somewhere in the final
    // round — the search beat the donor, so parity must be reached.
    let total_gens: usize = warm.stats.round_best.iter().map(Vec::len).sum();
    let (p_gen, p_secs) = warm
        .stats
        .parity_point(warm.time_secs * 1.05)
        .expect("the winning cost is itself within 5% of the winning cost");
    assert!(p_gen >= 1 && p_gen <= total_gens);
    assert!(p_secs > 0.0 && p_secs <= warm.stats.tuning_secs);
}

#[test]
fn cold_runs_are_unchanged_by_the_warm_start_field() {
    // `warm_start: None` must leave the search bit-identical to the
    // pre-registry tuner: the committed fig2/fig7 outputs and the farm
    // determinism suite all depend on it.
    let bench = SeparableConvolution::new(96, 5);
    let machine = MachineProfile::laptop();
    let a = tune(&bench, &machine, settings(0x42));
    let b = tune(&bench, &machine, settings(0x42));
    assert_eq!(a.config, b.config);
    assert_eq!(a.time_secs, b.time_secs);
    assert_eq!(a.stats.round_best, b.stats.round_best);
    assert_eq!(a.stats.warm_source, None);
    assert_eq!(a.stats.repair_generations, None);
}

//! Tuner-convergence properties (the ROADMAP "tuner convergence tests"
//! item):
//!
//! * best-cost is **monotonically non-increasing** within every round's
//!   generation history, on every benchmark, for arbitrary seeds — the
//!   population never evicts its best candidate, kicks included;
//! * the final configuration is **thread-count invariant**: farm
//!   evaluation at 1, 2 and 8 threads yields an identical `Tuned.config`
//!   (and identical virtual times and search accounting) for a fixed seed.

use petal_apps::{all_benchmarks, Benchmark};
use petal_farm::FarmSettings;
use petal_gpu::profile::MachineProfile;
use petal_tuner::{Autotuner, Tuned, TunerSettings};
use proptest::prelude::*;

/// Smoke-budget settings with an explicit seed and thread count.
fn settings(seed: u64, threads: usize) -> TunerSettings {
    TunerSettings {
        seed,
        farm: FarmSettings { threads, ..FarmSettings::sequential() },
        ..TunerSettings::smoke()
    }
}

/// Shrink a benchmark to test-friendly sizes (same trick as the benches).
fn small_benchmarks() -> Vec<Box<dyn Benchmark>> {
    all_benchmarks()
        .into_iter()
        .map(|b| {
            let target = b.input_size().min(4096);
            b.resized(target).unwrap_or(b)
        })
        .collect()
}

fn tune(bench: &dyn Benchmark, machine: &MachineProfile, seed: u64, threads: usize) -> Tuned {
    Autotuner::new(bench, machine, settings(seed, threads)).run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn best_cost_is_monotone_over_generations_on_every_benchmark(seed in 0u64..1000) {
        let machine = MachineProfile::desktop();
        for bench in small_benchmarks() {
            let tuned = tune(&*bench, &machine, seed, 1);
            prop_assert!(!tuned.stats.round_best.is_empty(), "{}", bench.name());
            for (round, history) in tuned.stats.round_best.iter().enumerate() {
                for w in history.windows(2) {
                    prop_assert!(
                        w[1] <= w[0],
                        "{}: best-cost regressed in round {round}: {:?}",
                        bench.name(),
                        history
                    );
                }
            }
        }
    }
}

#[test]
fn farm_thread_count_never_changes_the_result() {
    let machine = MachineProfile::desktop();
    for bench in [
        small_benchmarks().remove(0), // Black-Scholes
        Box::new(petal_apps::convolution::SeparableConvolution::new(96, 5)) as Box<dyn Benchmark>,
    ] {
        let one = tune(&*bench, &machine, 0xfa23, 1);
        for threads in [2, 8] {
            let many = tune(&*bench, &machine, 0xfa23, threads);
            assert_eq!(one.config, many.config, "{}: config at {threads} threads", bench.name());
            assert_eq!(one.time_secs, many.time_secs, "{}: time", bench.name());
            // Everything except the thread-shaped accounting is identical.
            assert_eq!(one.stats.trials, many.stats.trials);
            assert_eq!(one.stats.rejected, many.stats.rejected);
            assert_eq!(one.stats.tuning_secs, many.stats.tuning_secs);
            assert_eq!(one.stats.compile_secs, many.stats.compile_secs);
            assert_eq!(one.stats.kicks, many.stats.kicks);
            assert_eq!(one.stats.round_best, many.stats.round_best);
            assert_eq!(many.stats.threads, threads);
            assert_eq!(
                many.stats.per_thread_trials.iter().sum::<usize>(),
                many.stats.trials,
                "per-thread accounting covers every trial"
            );
        }
    }
}

#[test]
fn kicks_fire_and_report() {
    // A deliberately stagnation-prone budget (tiny population, many
    // generations at one size) must fire at least one kick and still keep
    // best-cost monotone.
    let bench = petal_apps::convolution::SeparableConvolution::new(96, 5);
    let machine = MachineProfile::desktop();
    let s = TunerSettings {
        seed: 11,
        trials_per_round: 24,
        population: 2,
        size_schedule: vec![1.0],
        small_size_trial_fraction: 1.0,
        kick_after: 1,
        ..TunerSettings::smoke()
    };
    let tuned = Autotuner::new(&bench, &machine, s).run();
    assert!(tuned.stats.kicks >= 1, "kicks: {}", tuned.stats.kicks);
    for history in &tuned.stats.round_best {
        for w in history.windows(2) {
            assert!(w[1] <= w[0], "kick evicted the best: {history:?}");
        }
    }
}

//! Mutation operators (§5.2).
//!
//! "Mutators are functions that create a new algorithm configuration by
//! changing an existing configuration" — generated from the program's
//! static structure. Three families exist, as in the paper:
//!
//! * **selector manipulation** — add, remove, or change a level of a
//!   selector;
//! * **cutoff scaling** — values compared against input sizes are scaled by
//!   a log-normal factor, so halving and doubling are equally likely and
//!   small changes are more likely than large ones;
//! * **tunable manipulation** — size-like tunables scale log-normally,
//!   small-range tunables (algorithm-like, ratios) draw uniformly.

use petal_core::config::{Config, Selector, Tunable, MAX_SELECTOR_LEVELS};
use petal_core::Program;
use petal_gpu::profile::MachineProfile;
use rand::rngs::StdRng;
use rand::Rng;

/// Draw a log-normal scale factor: `exp(N(0, ln 2))`, clamped to keep
/// mutations finite.
fn lognormal_scale(rng: &mut StdRng) -> f64 {
    // Box-Muller with the crate's uniform source keeps rand's API surface
    // small (no rand_distr dependency).
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (z * std::f64::consts::LN_2).exp().clamp(0.05, 20.0)
}

/// Scale a size-like integer log-normally within `[min, max]`.
fn scale_size(value: i64, min: i64, max: i64, rng: &mut StdRng) -> i64 {
    let scaled = (value.max(1) as f64 * lognormal_scale(rng)).round() as i64;
    scaled.clamp(min, max)
}

/// Produce a mutated copy of `cfg`.
///
/// One mutation site is chosen uniformly among all selectors and tunables;
/// the applicable operator for that site is then applied. The operator set
/// is derived from the program structure, as in the paper ("generated
/// fully automatically with the static analysis information").
#[must_use]
pub fn mutate(
    cfg: &Config,
    program: &Program,
    machine: &MachineProfile,
    max_input_size: u64,
    rng: &mut StdRng,
) -> Config {
    let mut out = cfg.clone();
    let selector_names: Vec<String> = out.selectors().map(|(n, _)| n.to_owned()).collect();
    let tunable_names: Vec<String> = out.tunables().map(|(n, _)| n.to_owned()).collect();
    if selector_names.is_empty() && tunable_names.is_empty() {
        return out;
    }
    // Algorithmic choices are the high-order bits of the search space:
    // pick the selector family and the tunable family with equal weight
    // (rather than uniformly over all sites, which would drown the few
    // selectors among the many tunables).
    let pick_selector =
        !selector_names.is_empty() && (tunable_names.is_empty() || rng.gen_bool(0.5));
    if pick_selector {
        let name = &selector_names[rng.gen_range(0..selector_names.len())];
        let current = out.selector(name).expect("iterated name exists").clone();
        let num_algs = current.num_algs();
        let mutated = mutate_selector(&current, num_algs, max_input_size, rng);
        out.set_selector(name, mutated);
        let _ = (program, machine); // structure already encoded in the config
    } else {
        let name = &tunable_names[rng.gen_range(0..tunable_names.len())];
        let t = *out.tunable(name).expect("iterated name exists");
        let mutated = mutate_tunable(t, rng);
        out.set_tunable(name, mutated);
    }
    out
}

/// Apply one selector-manipulation operator.
fn mutate_selector(s: &Selector, num_algs: usize, max_input: u64, rng: &mut StdRng) -> Selector {
    let mut cutoffs = s.cutoffs().to_vec();
    let mut algs = s.algs().to_vec();
    let op = rng.gen_range(0..4);
    match op {
        // Add a level: split a random position with a random cutoff.
        0 if algs.len() < MAX_SELECTOR_LEVELS => {
            let cutoff = rng.gen_range(1..=max_input.max(2));
            let pos = cutoffs.partition_point(|&c| c < cutoff);
            if cutoffs.get(pos) == Some(&cutoff) {
                // Duplicate cutoff: fall through to changing an algorithm.
                let i = rng.gen_range(0..algs.len());
                algs[i] = rng.gen_range(0..num_algs);
            } else {
                cutoffs.insert(pos, cutoff);
                algs.insert(pos + 1, rng.gen_range(0..num_algs));
            }
        }
        // Remove a level.
        1 if !cutoffs.is_empty() => {
            let i = rng.gen_range(0..cutoffs.len());
            cutoffs.remove(i);
            algs.remove(i + 1);
        }
        // Scale a cutoff log-normally.
        2 if !cutoffs.is_empty() => {
            let i = rng.gen_range(0..cutoffs.len());
            let scaled = ((cutoffs[i].max(1)) as f64 * lognormal_scale(rng)).round() as u64;
            let lo = if i == 0 { 1 } else { cutoffs[i - 1] + 1 };
            let hi = cutoffs.get(i + 1).map_or(u64::MAX, |&c| c.saturating_sub(1)).max(lo);
            cutoffs[i] = scaled.clamp(lo, hi);
        }
        // Change a level's algorithm (uniform random, per §5.2).
        _ => {
            let i = rng.gen_range(0..algs.len());
            algs[i] = rng.gen_range(0..num_algs);
        }
    }
    Selector::new(cutoffs, algs, num_algs)
}

/// Apply the tunable-manipulation operator appropriate for the range.
fn mutate_tunable(t: Tunable, rng: &mut StdRng) -> Tunable {
    if t.cardinality() <= 64 {
        // Small ranges (ratios, flags): uniform draw.
        Tunable::new(rng.gen_range(t.min..=t.max), t.min, t.max)
    } else {
        // Size-like values: log-normal scaling.
        Tunable::new(scale_size(t.value, t.min, t.max, rng), t.min, t.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn lognormal_is_centered_and_symmetricish() {
        let mut r = rng();
        let samples: Vec<f64> = (0..4000).map(|_| lognormal_scale(&mut r)).collect();
        let geo_mean = (samples.iter().map(|x| x.ln()).sum::<f64>() / samples.len() as f64).exp();
        assert!((geo_mean - 1.0).abs() < 0.1, "geometric mean {geo_mean}");
        let halved = samples.iter().filter(|&&x| x < 0.55).count();
        let doubled = samples.iter().filter(|&&x| x > 1.8).count();
        let ratio = halved as f64 / doubled.max(1) as f64;
        assert!((0.5..2.0).contains(&ratio), "halve/double balance {ratio}");
    }

    #[test]
    fn selector_mutations_stay_valid() {
        let mut r = rng();
        let mut s = Selector::new(vec![100, 1000], vec![0, 1, 2], 3);
        for _ in 0..500 {
            s = mutate_selector(&s, 3, 1 << 20, &mut r);
            assert!(s.levels() <= MAX_SELECTOR_LEVELS);
            assert!(s.cutoffs().windows(2).all(|w| w[0] < w[1]));
            assert!(s.algs().iter().all(|&a| a < 3));
        }
    }

    #[test]
    fn tunable_mutations_respect_bounds() {
        let mut r = rng();
        let ratio = Tunable::new(4, 0, 8);
        let size = Tunable::new(4096, 1, 1 << 20);
        for _ in 0..200 {
            let m = mutate_tunable(ratio, &mut r);
            assert!((0..=8).contains(&m.value));
            let m = mutate_tunable(size, &mut r);
            assert!((1..=(1 << 20)).contains(&m.value));
        }
    }

    #[test]
    fn mutate_changes_something_eventually() {
        let mut cfg = Config::new();
        cfg.set_selector("s", Selector::constant(0, 4));
        cfg.set_tunable("t", Tunable::new(128, 1, 1024));
        let program = Program::new("x");
        let machine = petal_gpu::profile::MachineProfile::desktop();
        let mut r = rng();
        let changed = (0..50)
            .map(|_| mutate(&cfg, &program, &machine, 1 << 16, &mut r))
            .filter(|c| *c != cfg)
            .count();
        assert!(changed > 20, "mutation should usually change the config ({changed}/50)");
    }
}

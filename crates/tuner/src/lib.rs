//! # petal-tuner — the evolutionary autotuner (§5)
//!
//! Searches the configuration space of a benchmark for one machine:
//!
//! * **Representation** — a [`petal_core::Config`]: selectors (piecewise
//!   algorithm choices over input sizes, §5.1) plus bounded integer
//!   tunables (OpenCL local work sizes, GPU/CPU ratios in 1/8 steps,
//!   cutoffs).
//! * **Algorithm** (§5.2) — an *asexual* evolutionary search: each new
//!   candidate has a single parent, and is admitted to the population only
//!   if it outperforms that parent. Test input sizes grow exponentially,
//!   exploiting optimal substructure; small sizes run fewer trials (§5.4's
//!   mitigation of kernel-compile overhead, which the simulated device also
//!   charges).
//! * **Mutators** ([`mutate`]) — selector manipulation (add / remove /
//!   change a level), and tunable manipulation with log-normal scaling for
//!   size-like values ("a value is equally likely to be halved as ...
//!   doubled") and uniform choice for small-range values.
//!
//! The fitness of a candidate is the virtual makespan reported by the
//! deterministic executor; candidates that fail the benchmark's
//! correctness/accuracy check (e.g. the SVD accuracy target) are rejected
//! outright.

pub mod mutate;

use petal_apps::Benchmark;
use petal_core::executor::Executor;
use petal_core::{Config, Program};
use petal_gpu::profile::MachineProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs controlling the search effort.
#[derive(Debug, Clone, PartialEq)]
pub struct TunerSettings {
    /// RNG seed (the whole search is deterministic given the seed).
    pub seed: u64,
    /// Mutants evaluated per input-size round.
    pub trials_per_round: usize,
    /// Population capacity (best candidates kept).
    pub population: usize,
    /// Input sizes as fractions of the benchmark's final size; the last
    /// entry should be 1.0. Sizes grow exponentially as in §5.2.
    pub size_schedule: Vec<f64>,
    /// Fewer trials at small sizes: the fraction of `trials_per_round`
    /// used for every entry of the schedule except the last (§5.4).
    pub small_size_trial_fraction: f64,
    /// Model a process restart per candidate test, so every trial re-JITs
    /// its kernels (the fixed startup cost that dominates small-input
    /// autotuning in §5.4). The IR cache then skips the frontend.
    pub model_process_restarts: bool,
}

impl TunerSettings {
    /// The default search effort used by the figure harnesses.
    #[must_use]
    pub fn standard() -> Self {
        TunerSettings {
            seed: 0xa11ce,
            trials_per_round: 48,
            population: 6,
            size_schedule: vec![1.0 / 64.0, 1.0 / 8.0, 1.0],
            small_size_trial_fraction: 0.5,
            model_process_restarts: true,
        }
    }

    /// A tiny budget for unit tests and doc examples.
    #[must_use]
    pub fn smoke() -> Self {
        TunerSettings {
            seed: 7,
            trials_per_round: 6,
            population: 3,
            size_schedule: vec![0.25, 1.0],
            small_size_trial_fraction: 0.5,
            model_process_restarts: false,
        }
    }
}

impl Default for TunerSettings {
    fn default() -> Self {
        Self::standard()
    }
}

/// Accounting over one autotuning run (feeds the Fig. 8 table).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TuningStats {
    /// Candidate evaluations performed.
    pub trials: usize,
    /// Candidates rejected by the correctness/accuracy check.
    pub rejected: usize,
    /// Total virtual time spent testing (execution + JIT compiles) — the
    /// analog of the paper's "Mean Autotuning Time".
    pub tuning_secs: f64,
    /// Virtual seconds of that spent in runtime kernel compilation.
    pub compile_secs: f64,
}

/// The result of autotuning.
#[derive(Debug, Clone)]
pub struct Tuned {
    /// The best configuration found.
    pub config: Config,
    /// Its virtual execution time at full input size.
    pub time_secs: f64,
    /// Search accounting.
    pub stats: TuningStats,
}

struct Candidate {
    config: Config,
    fitness: f64,
}

/// The evolutionary autotuner for one (benchmark, machine) pair.
pub struct Autotuner<'a> {
    benchmark: &'a dyn Benchmark,
    machine: MachineProfile,
    program: Program,
    settings: TunerSettings,
    rng: StdRng,
    executor: Executor,
    stats: TuningStats,
}

impl std::fmt::Debug for Autotuner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Autotuner")
            .field("benchmark", &self.benchmark.name())
            .field("machine", &self.machine.codename)
            .finish_non_exhaustive()
    }
}

impl<'a> Autotuner<'a> {
    /// New tuner with the given search effort.
    #[must_use]
    pub fn new(
        benchmark: &'a dyn Benchmark,
        machine: &MachineProfile,
        settings: TunerSettings,
    ) -> Self {
        let mut executor = Executor::new(machine);
        executor.set_process_restarts(settings.model_process_restarts);
        Autotuner {
            benchmark,
            machine: machine.clone(),
            program: benchmark.program(machine),
            settings,
            rng: StdRng::seed_from_u64(0),
            executor,
            stats: TuningStats::default(),
        }
    }

    /// Enable or disable the kernel compiler's IR cache (§5.4 ablation).
    pub fn set_ir_cache(&mut self, enabled: bool) -> &mut Self {
        use petal_gpu::compile::CompileCache;
        use petal_gpu::device::Device;
        let device = self.machine.gpu.clone().map(|g| {
            if enabled {
                Device::new(g)
            } else {
                Device::with_compiler(g, CompileCache::without_ir_cache())
            }
        });
        self.executor.set_device(device);
        self
    }

    /// Run the search and return the best configuration.
    ///
    /// The executor (and therefore the device's kernel cache) persists
    /// across trials, exactly as one autotuning process would behave; the
    /// accumulated compile time is reported in [`TuningStats`].
    pub fn run(&mut self) -> Tuned {
        self.rng = StdRng::seed_from_u64(self.settings.seed);
        let schedule = self.settings.size_schedule.clone();
        let full_size = self.benchmark.input_size();
        let seed_config = self.program.default_config(&self.machine);
        let mut population = vec![Candidate { config: seed_config, fitness: f64::INFINITY }];

        for (round, frac) in schedule.iter().enumerate() {
            let is_final = round == schedule.len() - 1;
            let size = ((full_size as f64 * frac) as u64).max(1);
            let trials = if is_final {
                self.settings.trials_per_round
            } else {
                ((self.settings.trials_per_round as f64 * self.settings.small_size_trial_fraction)
                    as usize)
                    .max(1)
            };
            // Re-evaluate survivors at the new size.
            for cand in &mut population {
                cand.fitness = self.evaluate(&cand.config, size).unwrap_or(f64::INFINITY);
            }
            for _ in 0..trials {
                let parent_idx = self.pick_parent(population.len());
                let parent_fitness = population[parent_idx].fitness;
                let child = mutate::mutate(
                    &population[parent_idx].config,
                    &self.program,
                    &self.machine,
                    full_size,
                    &mut self.rng,
                );
                if let Some(f) = self.evaluate(&child, size) {
                    // §5.2: children join only if they beat their parent.
                    if f < parent_fitness {
                        population.push(Candidate { config: child, fitness: f });
                        population.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));
                        population.truncate(self.settings.population);
                    }
                } else {
                    self.stats.rejected += 1;
                }
            }
            population.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));
            population.truncate(self.settings.population);
        }

        // Make sure the winner's fitness reflects the full size.
        let mut best_idx = 0;
        let mut best_time = f64::INFINITY;
        for (i, cand) in population.iter().enumerate() {
            let t = self.evaluate(&cand.config, full_size).unwrap_or(f64::INFINITY);
            if t < best_time {
                best_time = t;
                best_idx = i;
            }
        }
        Tuned {
            config: population.swap_remove(best_idx).config,
            time_secs: best_time,
            stats: self.stats,
        }
    }

    /// Biased parent selection: index 0 (the best) is picked most often.
    fn pick_parent(&mut self, len: usize) -> usize {
        let a = self.rng.gen_range(0..len);
        let b = self.rng.gen_range(0..len);
        a.min(b)
    }

    /// Evaluate a configuration at `size` elements; `None` when the
    /// candidate is invalid or fails the benchmark's check.
    fn evaluate(&mut self, cfg: &Config, size: u64) -> Option<f64> {
        let sized: Box<dyn Benchmark>;
        let bench: &dyn Benchmark = if size == self.benchmark.input_size() {
            self.benchmark
        } else {
            sized = self.benchmark.resized(size)?;
            &*sized
        };
        let petal_apps::Instance { mut world, plan, check } = bench.instantiate(&self.machine, cfg);
        let report = self.executor.run(plan, &mut world).ok()?;
        self.stats.trials += 1;
        self.stats.tuning_secs += report.total_secs();
        self.stats.compile_secs += report.compile_secs;
        if check(&world).is_err() {
            return None;
        }
        Some(report.virtual_time_secs())
    }

    /// Search accounting so far.
    #[must_use]
    pub fn stats(&self) -> TuningStats {
        self.stats
    }
}

/// Render a configuration for the Fig. 6 table: the selector poly-algorithm
/// levels plus the placement-relevant tunables.
#[must_use]
pub fn describe_config(cfg: &Config) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, sel) in cfg.selectors() {
        let _ = write!(out, "{name}: alg {}", sel.algs()[0]);
        for (c, a) in sel.cutoffs().iter().zip(&sel.algs()[1..]) {
            let _ = write!(out, " | >= {c}: alg {a}");
        }
        if let Some(r) = cfg.tunable(&format!("{name}.gpu_ratio")) {
            let _ = write!(out, " (gpu {}/8)", r.value);
        }
        if let Some(l) = cfg.tunable(&format!("{name}.local_size")) {
            let _ = write!(out, " (lws {})", l.value);
        }
        out.push_str("; ");
    }
    out.trim_end_matches("; ").to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use petal_apps::blackscholes::BlackScholes;
    use petal_apps::convolution::SeparableConvolution;

    #[test]
    fn tuner_improves_on_the_default_config() {
        // Black-Scholes on the Desktop: the default (CPU) config is far
        // from the GPU optimum; even a smoke-budget search must find a
        // large win.
        let bench = BlackScholes::new(100_000);
        let machine = MachineProfile::desktop();
        let default_time = bench.run_default(&machine).expect("default runs").virtual_time_secs();
        let mut tuner = Autotuner::new(&bench, &machine, TunerSettings::smoke());
        let tuned = tuner.run();
        assert!(
            tuned.time_secs < default_time * 0.7,
            "tuned {} vs default {default_time}",
            tuned.time_secs
        );
        assert!(tuned.stats.trials > 0);
    }

    #[test]
    fn search_is_deterministic_given_a_seed() {
        let bench = SeparableConvolution::new(96, 5);
        let machine = MachineProfile::laptop();
        let run = || Autotuner::new(&bench, &machine, TunerSettings::smoke()).run();
        let a = run();
        let b = run();
        assert_eq!(a.config, b.config);
        assert_eq!(a.time_secs, b.time_secs);
    }

    #[test]
    fn tuning_time_accounts_compiles() {
        let bench = SeparableConvolution::new(96, 5);
        let machine = MachineProfile::desktop();
        let settings = TunerSettings { trials_per_round: 32, ..TunerSettings::smoke() };
        let mut tuner = Autotuner::new(&bench, &machine, settings);
        let tuned = tuner.run();
        assert!(tuned.stats.tuning_secs > 0.0);
        assert!(
            tuned.stats.compile_secs > 0.0,
            "OpenCL candidates must have JIT-compiled at least once"
        );
        assert!(tuned.stats.tuning_secs >= tuned.stats.compile_secs);
    }

    #[test]
    fn describe_config_mentions_selectors_and_ratios() {
        let bench = BlackScholes::new(1024);
        let machine = MachineProfile::desktop();
        let cfg = bench.program(&machine).default_config(&machine);
        let text = describe_config(&cfg);
        assert!(text.contains("blackscholes"));
        assert!(text.contains("gpu 8/8"));
    }
}

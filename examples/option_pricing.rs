//! Domain scenario: pricing a book of European options, sweeping the
//! GPU/CPU work ratio in the paper's 1/8 increments to find where the
//! heterogeneous split beats either processor alone (Fig. 7a's insight).
//!
//! ```sh
//! cargo run --release --example option_pricing
//! ```

use petal::prelude::*;
use petal_apps::blackscholes::BlackScholes;

fn main() -> Result<(), Error> {
    let n = if petal_apps::workload::smoke_mode() { 10_000 } else { 200_000 };
    let book = BlackScholes::new(n);
    println!("Pricing {n} European calls; sweeping the GPU/CPU split\n");

    for machine in MachineProfile::all() {
        println!("--- {} ---", machine.codename);
        let program = book.program(&machine);
        let mut best = (f64::INFINITY, 0);
        for eighths in 0..=8 {
            let mut cfg = program.default_config(&machine);
            cfg.set_selector("blackscholes", Selector::constant(1, 2));
            cfg.set_tunable("blackscholes.gpu_ratio", Tunable::new(eighths, 0, 8));
            let t = book.run_with_config(&machine, &cfg)?.virtual_time_secs();
            let bar = "#".repeat((t * 2.0e3) as usize % 60 + 1);
            println!("gpu {eighths}/8  {t:.5}s  {bar}");
            if t < best.0 {
                best = (t, eighths);
            }
        }
        println!("best split on {}: {}/8 of the book on the GPU\n", machine.codename, best.1);
    }
    println!("On machines whose GPU and CPU are close in throughput, the best split");
    println!("is fractional — exactly the Laptop's 25%/75% division in the paper.");
    Ok(())
}

//! Quickstart: define a problem, autotune it for a machine, run the tuned
//! configuration, and inspect what the tuner chose.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use petal::prelude::*;
use petal_apps::convolution::SeparableConvolution;
use petal_tuner::describe_config;

fn main() -> Result<(), Error> {
    // The paper's driving example (Fig. 1): separable convolution, which
    // can run as one 2D pass or two 1D passes, on the CPU backend or as
    // generated OpenCL kernels with or without scratchpad staging.
    let width = if petal_apps::workload::smoke_mode() { 48 } else { 256 };
    let bench = SeparableConvolution::new(width, 7);

    for machine in MachineProfile::all() {
        // Untuned baseline: the first algorithm everywhere, CPU backend.
        let default_cfg = bench.program(&machine).default_config(&machine);
        let untuned = bench.run_with_config(&machine, &default_cfg)?;

        // Autotune (a small budget; the figure harnesses use more).
        let mut tuner = Autotuner::new(&bench, &machine, TunerSettings::smoke());
        let tuned = tuner.run();
        let report = bench.run_with_config(&machine, &tuned.config)?;

        println!("=== {} ===", machine.codename);
        println!("untuned : {:.6} virtual seconds", untuned.virtual_time_secs());
        println!(
            "tuned   : {:.6} virtual seconds ({:.2}x speedup, {} trials)",
            report.virtual_time_secs(),
            untuned.virtual_time_secs() / report.virtual_time_secs(),
            tuned.stats.trials,
        );
        println!("config  : {}\n", describe_config(&tuned.config));
    }
    Ok(())
}

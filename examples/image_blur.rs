//! Domain scenario: blurring a synthetic image with a separable Gaussian,
//! comparing the four OpenCL mappings of Fig. 2 by hand and verifying they
//! all produce identical pixels.
//!
//! ```sh
//! cargo run --release --example image_blur
//! ```

use petal::prelude::*;
use petal_apps::convolution::{ConvMapping, SeparableConvolution};

fn main() -> Result<(), Error> {
    let width = if petal_apps::workload::smoke_mode() { 64 } else { 320 };
    let kernel = 9;
    let image = SeparableConvolution::new(width, kernel);
    println!("Blurring a {width}x{width} image with a {kernel}-tap separable kernel\n");

    for machine in MachineProfile::all() {
        println!("--- {} ---", machine.codename);
        let mut best: Option<(f64, &'static str)> = None;
        for mapping in ConvMapping::all() {
            let cfg = image.mapping_config(&machine, mapping);
            let report = image.run_with_config(&machine, &cfg)?;
            let t = report.virtual_time_secs();
            println!(
                "{:22} {:.6}s  (device busy {:.0}% of makespan)",
                mapping.label(),
                t,
                report.rt.device_utilization() * 100.0
            );
            if best.map_or(true, |(bt, _)| t < bt) {
                best = Some((t, mapping.label()));
            }
        }
        let (t, label) = best.expect("four mappings ran");
        println!("best mapping here: {label} at {t:.6}s\n");
    }
    println!("Each machine picked its own winner — the portability problem the paper solves.");
    Ok(())
}

//! Domain scenario: the Sort benchmark's poly-algorithms (Fig. 6's rows).
//!
//! Builds the paper-style hybrid configurations by hand — e.g. "4-way
//! merge sort above 7622, 2-way until 2730, then insertion sort" — and
//! compares them against single-algorithm configurations and the GPU
//! bitonic baseline.
//!
//! ```sh
//! cargo run --release --example polyalgorithm_sort
//! ```

use petal::prelude::*;
use petal_apps::sort::Sort;

fn main() -> Result<(), Error> {
    let n = if petal_apps::workload::smoke_mode() { 1 << 12 } else { 1 << 17 };
    let sort = Sort::new(n);
    println!("Sorting {n} doubles with different poly-algorithms\n");

    for machine in MachineProfile::all() {
        println!("--- {} ---", machine.codename);
        let program = sort.program(&machine);
        let run = |label: &str, sel: Selector| -> Result<f64, Error> {
            let mut cfg = program.default_config(&machine);
            cfg.set_selector("sort", sel);
            let t = sort.run_with_config(&machine, &cfg)?.virtual_time_secs();
            println!("{label:46} {t:.5}s");
            Ok(t)
        };
        // Single algorithms.
        run("insertion sort only", Selector::constant(0, 8))?;
        run("quicksort only", Selector::constant(2, 8))?;
        run("radix sort only", Selector::constant(3, 8))?;
        // Paper-style poly-algorithms (Fig. 6).
        let server_style = run(
            "4MS > 7622 > 2MS > 2730 > insertion (Server)",
            Selector::new(vec![2730, 7622], vec![0, 4, 5], 8),
        )?;
        let desktop_style = run(
            "2MS > 64294 > QS > 341 > insertion (Desktop)",
            Selector::new(vec![341, 64_294], vec![0, 2, 4], 8),
        )?;
        if machine.has_physical_gpu() {
            let gpu = run("GPU bitonic (hand-written baseline)", Selector::constant(7, 8))?;
            let best_poly = server_style.min(desktop_style);
            println!(
                "GPU bitonic is {:.1}x slower than the best poly-algorithm here",
                gpu / best_poly
            );
        }
        println!();
    }
    Ok(())
}

//! # petal — portable performance on heterogeneous architectures
//!
//! `petal` is a Rust reproduction of the ASPLOS 2013 system
//! *Portable Performance on Heterogeneous Architectures* (the heterogeneous
//! extension of PetaBricks). A single program written against
//! [`petal_core`]'s transform/rule model encodes a *space* of algorithms;
//! an evolutionary autotuner ([`petal_tuner`]) empirically searches that
//! space — algorithm selection, CPU/GPU placement, fractional work splits,
//! scratchpad-memory mapping, work-group sizes — per target machine.
//! Candidate evaluation runs on [`petal_farm`], a multi-threaded
//! evaluation farm whose results are bit-identical at any thread count.
//!
//! Because this environment has no physical GPU, devices are provided by
//! [`petal_gpu`], a simulated OpenCL subsystem: kernels run *functionally*
//! on the host (bit-exact data), while a calibrated analytic cost model
//! advances a virtual clock. The runtime ([`petal_rt`]) is a deterministic
//! discrete-event simulation of the paper's hybrid
//! workstealing/work-pushing scheduler.
//!
//! ## Quickstart
//!
//! ```
//! use petal::prelude::*;
//!
//! // A machine to tune for (Desktop: 4 cores + discrete GPU).
//! let machine = MachineProfile::desktop();
//! // The separable-convolution benchmark from the paper (Fig. 1).
//! let bench = petal::apps::convolution::SeparableConvolution::new(64, 5);
//! // Autotune briefly and run the best configuration found.
//! let mut tuner = Autotuner::new(&bench, &machine, TunerSettings::smoke());
//! let tuned = tuner.run();
//! let report = bench.run_with_config(&machine, &tuned.config)?;
//! assert!(report.virtual_time_secs() > 0.0);
//! # Ok::<(), petal::Error>(())
//! ```

pub use petal_apps as apps;
pub use petal_blas as blas;
pub use petal_core as core;
pub use petal_farm as farm;
pub use petal_gpu as gpu;
pub use petal_registry as registry;
pub use petal_rt as rt;
pub use petal_tuner as tuner;

pub use petal_core::Error;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use petal_apps::{Benchmark, Instance};
    pub use petal_core::{
        config::{Config, Selector, Tunable},
        executor::{ExecReport, Executor},
        plan::{Placement, Plan, PlanBuilder},
        program::Program,
        Error, World,
    };
    pub use petal_farm::{EvalFarm, EvalJob, EvalResult, FarmSettings};
    pub use petal_gpu::profile::MachineProfile;
    pub use petal_registry::{ConfigStore, DirStore, RemoteStore};
    pub use petal_tuner::{Autotuner, Tuned, TunerSettings, WarmStart};
}
